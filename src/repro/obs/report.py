"""Run reports: turn an exported trace into an ASCII or HTML dashboard.

A trace produced by ``repro step --trace-out`` (or any instrumented run)
carries the full labelled metric registry — per-cycle partition quality,
reassignment cost, remap traffic, and per-rank virtual-machine traffic.
:func:`render_ascii` prints the paper's quality-of-balance quantities as
aligned tables plus cycle-over-cycle charts
(:func:`repro.experiments.ascii_plot.ascii_chart`); :func:`render_html`
emits a single self-contained HTML file with stat tiles, SVG line charts,
a per-rank timeline, a critical-path lane with per-rank slack bars
(from the causal record, when the trace carries one), and a top-span
table.  Both read only the tracer — ``repro report <trace.jsonl>``
needs no access to the original mesh.
"""

from __future__ import annotations

import html as _html

from .tracer import Tracer

__all__ = ["render_ascii", "render_html"]


# --- shared data extraction --------------------------------------------------


def _fmt(v, nd: int = 4) -> str:
    """Format a metric value: ints plainly, floats with %.*g, None as '-'."""
    if v is None:
        return "-"
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return f"{f:.{nd}g}"


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _series(tracer: Tracer, name: str, **labels) -> dict[int, float]:
    return tracer.metrics.series(name, labels=labels or None)


def _cycle_rows(tracer: Tracer) -> list[dict]:
    """One dict per cycle with every per-cycle quantity (None = absent)."""
    reg = tracer.metrics
    fields = {
        "imb_before": _series(tracer, "repro.partition.imbalance", when="before"),
        "imb_after": _series(tracer, "repro.partition.imbalance", when="after"),
        "cut_before": _series(tracer, "repro.partition.edgecut", when="before"),
        "cut_after": _series(tracer, "repro.partition.edgecut", when="after"),
        "diag_fraction": _series(tracer, "repro.partition.diag_fraction"),
        "accepted": _series(tracer, "repro.cycle.accepted"),
        "growth": _series(tracer, "repro.cycle.growth_factor"),
        "total_seconds": _series(tracer, "repro.cycle.total_seconds"),
        "elements_moved": _series(tracer, "repro.remap.elements_moved"),
        "words_moved": _series(tracer, "repro.remap.words_moved"),
        "remap_messages": _series(tracer, "repro.remap.messages"),
    }
    for method in ("greedy", "mwbg"):
        for quant in ("total_v", "max_v", "max_sr"):
            fields[f"{quant}_{method}"] = _series(
                tracer, f"repro.reassign.{quant}", method=method
            )
    rows = []
    for c in reg.cycles():
        row = {"cycle": c}
        for key, series in fields.items():
            row[key] = series.get(c)
        rows.append(row)
    return rows


_PHASES = ("marking", "repartition", "gather_scatter", "reassign",
           "remap", "subdivision")


def _phase_rows(tracer: Tracer) -> list[dict]:
    per_phase = {
        p: _series(tracer, "repro.cycle.phase_seconds", phase=p)
        for p in _PHASES
    }
    total = _series(tracer, "repro.cycle.total_seconds")
    rows = []
    for c in tracer.metrics.cycles():
        row = {"cycle": c, "total": total.get(c)}
        for p in _PHASES:
            row[p] = per_phase[p].get(c)
        rows.append(row)
    return rows


_VM_COLS = (
    ("msgs sent", "repro.vm.messages_sent"),
    ("msgs recv", "repro.vm.messages_recv"),
    ("sync msgs", "repro.vm.sync_messages"),
    ("words sent", "repro.vm.words_sent"),
    ("words recv", "repro.vm.words_recv"),
    ("busy s", "repro.vm.busy_seconds"),
    ("idle s", "repro.vm.idle_seconds"),
)
_LEDGER_COLS = (
    ("msgs sent", "repro.ledger.messages_sent"),
    ("msgs recv", "repro.ledger.messages_recv"),
    ("words sent", "repro.ledger.words_sent"),
    ("words recv", "repro.ledger.words_recv"),
)
#: Measured (clock="wall") mirrors of the VM series, from real backends.
_VM_WALL_COLS = (
    ("msgs sent", "repro.vm.messages_sent"),
    ("msgs recv", "repro.vm.messages_recv"),
    ("words sent", "repro.vm.words_sent"),
    ("words recv", "repro.vm.words_recv"),
    ("busy s", "repro.vm.busy_seconds"),
    ("idle s", "repro.vm.idle_seconds"),
    ("wait s", "repro.vm.wait_seconds"),
)
_TRANSPORT_COLS = (
    ("0-copy bytes", "repro.transport.bytes_zero_copy"),
    ("pickled bytes", "repro.transport.bytes_pickled"),
    ("0-copy msgs", "repro.transport.msgs_zero_copy"),
    ("pickled msgs", "repro.transport.msgs_pickled"),
    ("slab reuse", "repro.transport.slab_reuse"),
    ("spills", "repro.transport.spills"),
)


def _rank_rows(tracer: Tracer, cols,
               labels: dict | None = None) -> tuple[list[str], list[list]]:
    """Per-rank table (summed over cycles) for a metric family.

    ``labels`` pins the label set exactly (``{}`` = unlabelled samples
    only) — necessary for the ``repro.vm.*`` family, which exists both
    modelled (no labels) and measured (``clock="wall"``).
    """
    reg = tracer.metrics
    per = {label: reg.per_rank(name, labels=labels) for label, name in cols}
    ranks = sorted({r for d in per.values() for r in d})
    headers = ["rank"] + [label for label, _ in cols]
    rows = [
        [r] + [per[label].get(r) for label, _ in cols] for r in ranks
    ]
    return headers, rows


def _transport_backends(tracer: Tracer) -> list[str]:
    """Distinct ``backend`` label values carrying transport counters."""
    out = set()
    for s in tracer.metrics.samples():
        if s.name.startswith("repro.transport."):
            out.add(dict(s.labels).get("backend", ""))
    return sorted(out)


def _top_spans(tracer: Tracer, n: int) -> list:
    closed = [s for s in tracer.spans if not s.open]
    return sorted(closed, key=lambda s: s.v_duration, reverse=True)[:n]


def _makespan(tracer: Tracer) -> float:
    return max([s.v_end for s in tracer.spans if not s.open] or [0.0])


def _causal_analysis(tracer: Tracer):
    """The trace's :class:`~repro.obs.causal.TraceAnalysis`, or ``None``
    when the trace carries no causal record (e.g. a v1/v2 file)."""
    has_steps = any(e.name == "ledger.superstep" for e in tracer.events)
    if not getattr(tracer, "causal_nodes", None) and not has_steps:
        return None
    from .causal import analyze

    analysis = analyze(tracer)
    if not analysis.runs and not analysis.supersteps:
        return None
    return analysis


def _wall_analysis(tracer: Tracer):
    """The measured (``clock="wall"``) analysis, or ``None`` when the
    trace carries no measured runs (virtual-only traces, v1–v3 files)."""
    if not any(e.name == "vm.run" and e.attrs.get("clock") == "wall"
               for e in tracer.events):
        return None
    from .causal import analyze

    analysis = analyze(tracer, clock="wall")
    return analysis if analysis.runs else None


def _resource_rows(tracer: Tracer) -> tuple[list[str], list[list[str]]]:
    """Per-process resource-peak table from the trace's ``resource``
    records (v5 traces; empty for older files)."""
    from .resource import resource_peaks

    peaks = resource_peaks(getattr(tracer, "resource_samples", ()))
    if not peaks:
        return [], []
    headers = ["process", "peak rss (MiB)", "cpu (s)", "gc collections",
               "samples"]
    rows = []
    for key in sorted(peaks, key=lambda k: (k is not None, k)):
        d = peaks[key]
        rows.append([
            "host" if key is None else f"rank {key}",
            f"{d['peak_rss_bytes'] / (1 << 20):.1f}",
            _fmt(d["cpu_seconds"]),
            _fmt(d["gc_collections"]),
            _fmt(d["samples"]),
        ])
    return headers, rows


def _rank_path_stats(analysis) -> tuple[dict[int, float], dict[int, float]]:
    """Per-rank (on-path seconds, summed slack) across all VM runs."""
    on_path: dict[int, float] = {}
    slack: dict[int, float] = {}
    for stats in analysis.stats.values():
        for st in stats:
            on_path[st.rank] = on_path.get(st.rank, 0.0) + st.on_path
            slack[st.rank] = slack.get(st.rank, 0.0) + st.slack
    return on_path, slack


# --- ASCII dashboard ---------------------------------------------------------


def render_ascii(tracer: Tracer, source: str = "", top: int = 10) -> str:
    """Render the trace as an ASCII dashboard (tables + charts)."""
    from repro.experiments.ascii_plot import ascii_chart

    reg = tracer.metrics
    cycles = reg.cycles()
    rows = _cycle_rows(tracer)
    parts: list[str] = []

    head = "repro run report"
    if source:
        head += f" — {source}"
    parts.append(head)
    parts.append("=" * len(head))
    head_line = (
        f"spans: {sum(1 for s in tracer.spans if not s.open)}   "
        f"events: {len(tracer.events)}   metric samples: {len(reg)}   "
        f"cycles: {len(cycles)}   "
        f"virtual makespan: {_fmt(_makespan(tracer))} s"
    )
    measured_runs = sum(
        1 for e in tracer.events
        if e.name == "vm.run" and e.attrs.get("clock") == "wall"
    )
    if measured_runs:
        head_line += f"   measured runs: {measured_runs}"
    parts.append(head_line)

    if rows:
        parts.append("")
        parts.append("Balance quality per cycle")
        parts.append(_table(
            ["cycle", "imb before", "imb after", "cut before", "cut after",
             "diag %", "accepted"],
            [[
                str(r["cycle"]), _fmt(r["imb_before"]), _fmt(r["imb_after"]),
                _fmt(r["cut_before"]), _fmt(r["cut_after"]),
                "-" if r["diag_fraction"] is None
                else f"{100 * r['diag_fraction']:.1f}",
                "-" if r["accepted"] is None
                else ("yes" if r["accepted"] else "no"),
            ] for r in rows],
        ))

        if any(r["total_v_greedy"] is not None or r["total_v_mwbg"] is not None
               for r in rows):
            parts.append("")
            parts.append("Reassignment cost (TotalV / MaxV / MaxSR)")
            parts.append(_table(
                ["cycle", "TotalV greedy", "TotalV mwbg", "MaxV greedy",
                 "MaxV mwbg", "MaxSR greedy", "MaxSR mwbg"],
                [[
                    str(r["cycle"]),
                    _fmt(r["total_v_greedy"]), _fmt(r["total_v_mwbg"]),
                    _fmt(r["max_v_greedy"]), _fmt(r["max_v_mwbg"]),
                    _fmt(r["max_sr_greedy"]), _fmt(r["max_sr_mwbg"]),
                ] for r in rows],
            ))

        if any(r["elements_moved"] is not None for r in rows):
            parts.append("")
            parts.append("Remap traffic per cycle")
            parts.append(_table(
                ["cycle", "elements moved", "words moved", "messages"],
                [[
                    str(r["cycle"]), _fmt(r["elements_moved"]),
                    _fmt(r["words_moved"]), _fmt(r["remap_messages"]),
                ] for r in rows],
            ))

        phase_rows = _phase_rows(tracer)
        parts.append("")
        parts.append("Cycle anatomy (virtual seconds per phase)")
        parts.append(_table(
            ["cycle"] + list(_PHASES) + ["total"],
            [[str(r["cycle"])] + [_fmt(r[p]) for p in _PHASES]
             + [_fmt(r["total"])] for r in phase_rows],
        ))

    if len(cycles) >= 2:
        imb = {
            "before": {c: v for c, v in
                       _series(tracer, "repro.partition.imbalance",
                               when="before").items()},
            "after": {c: v for c, v in
                      _series(tracer, "repro.partition.imbalance",
                              when="after").items()},
        }
        imb = {k: s for k, s in imb.items() if s}
        if imb:
            parts.append("")
            parts.append(ascii_chart(
                imb, title="Imbalance factor by cycle", xlabel="cycle"
            ))
        tv = {
            m: _series(tracer, "repro.reassign.total_v", method=m)
            for m in ("greedy", "mwbg")
        }
        tv = {k: s for k, s in tv.items() if s}
        if tv:
            parts.append("")
            parts.append(ascii_chart(
                tv, title="TotalV by cycle", xlabel="cycle"
            ))

    for label, cols in (("virtual machine", _VM_COLS),
                        ("cost ledger", _LEDGER_COLS)):
        headers, rank_rows = _rank_rows(tracer, cols, labels={})
        if rank_rows:
            parts.append("")
            parts.append(f"Per-rank traffic ({label}, summed over cycles)")
            parts.append(_table(
                headers, [[_fmt(c) for c in row] for row in rank_rows]
            ))

    headers, rank_rows = _rank_rows(tracer, _VM_WALL_COLS,
                                    labels={"clock": "wall"})
    if rank_rows:
        parts.append("")
        parts.append("Per-rank traffic (measured, wall clock)")
        parts.append(_table(
            headers, [[_fmt(c) for c in row] for row in rank_rows]
        ))

    for backend in _transport_backends(tracer):
        labels = {"backend": backend} if backend else {}
        headers, rank_rows = _rank_rows(tracer, _TRANSPORT_COLS,
                                        labels=labels)
        if not rank_rows:
            continue
        totals = ["total"] + [
            sum(row[i + 1] or 0 for row in rank_rows)
            for i in range(len(_TRANSPORT_COLS))
        ]
        parts.append("")
        parts.append(f"Transport counters ({backend or 'backend'})")
        parts.append(_table(
            headers,
            [[_fmt(c) for c in row] for row in rank_rows]
            + [[str(totals[0])] + [_fmt(c) for c in totals[1:]]],
        ))

    res_headers, res_rows = _resource_rows(tracer)
    if res_rows:
        parts.append("")
        parts.append("Resource usage (per process)")
        parts.append(_table(res_headers, res_rows))

    analysis = _causal_analysis(tracer)
    if analysis is not None:
        from .causal import format_critical_path

        parts.append("")
        parts.append("Critical path (from the causal record)")
        parts.append(format_critical_path(analysis, top=top))

    wall = _wall_analysis(tracer)
    if wall is not None:
        from .causal import format_critical_path

        parts.append("")
        parts.append("Measured critical path (wall clock)")
        parts.append(format_critical_path(wall, top=top))
        if analysis is not None and analysis.makespan > 0:
            parts.append("")
            parts.append(
                f"measured vs modelled: {_fmt(wall.makespan)} wall s "
                f"vs {_fmt(analysis.makespan)} virtual s"
            )

    spans = _top_spans(tracer, top)
    if spans:
        parts.append("")
        parts.append(f"Top {len(spans)} spans by virtual duration")
        parts.append(_table(
            ["name", "depth", "v_start", "v_seconds", "wall_seconds"],
            [[
                s.name, str(s.depth), _fmt(s.v_start),
                _fmt(s.v_duration), _fmt(s.wall_duration, 3),
            ] for s in spans],
        ))

    return "\n".join(parts) + "\n"


# --- HTML report -------------------------------------------------------------

_CSS = """
.viz-root {
  color-scheme: light;
  --page:           #f9f9f7;
  --surface-1:      #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --gridline:       #e1e0d9;
  --baseline:       #c3c2b7;
  --border:         rgba(11,11,11,0.10);
  --series-1:       #2a78d6;
  --series-2:       #eb6834;
  --series-3:       #1baf7a;
  background: var(--page);
  color: var(--text-primary);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --gridline:       #2c2c2a;
    --baseline:       #383835;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
    --series-2:       #d95926;
    --series-3:       #199e70;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page:           #0d0d0d;
  --surface-1:      #1a1a19;
  --text-primary:   #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted:     #898781;
  --gridline:       #2c2c2a;
  --baseline:       #383835;
  --border:         rgba(255,255,255,0.10);
  --series-1:       #3987e5;
  --series-2:       #d95926;
  --series-3:       #199e70;
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root .sub { color: var(--text-secondary); font-size: 13px; margin: 0 0 20px; }
.viz-root section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 0 0 16px;
}
.viz-root h2 { font-size: 14px; margin: 0 0 12px; color: var(--text-primary); }
.viz-root .tiles { display: flex; flex-wrap: wrap; gap: 24px; }
.viz-root .tile .v { font-size: 24px; }
.viz-root .tile .k { font-size: 12px; color: var(--text-secondary); }
.viz-root table {
  border-collapse: collapse; font-size: 12px;
  font-variant-numeric: tabular-nums;
}
.viz-root th, .viz-root td {
  padding: 3px 10px; text-align: right;
  border-bottom: 1px solid var(--gridline);
}
.viz-root th { color: var(--text-secondary); font-weight: 600; }
.viz-root td:first-child, .viz-root th:first-child { text-align: left; }
.viz-root .legend { font-size: 12px; color: var(--text-secondary); margin: 4px 0 8px; }
.viz-root .legend .chip {
  display: inline-block; width: 10px; height: 10px; border-radius: 2px;
  margin: 0 4px 0 12px; vertical-align: -1px;
}
.viz-root .caption { font-size: 11px; color: var(--text-muted); margin-top: 6px; }
.viz-root svg text { fill: var(--text-muted); font-size: 10px; }
"""

_SERIES_VARS = ("var(--series-1)", "var(--series-2)", "var(--series-3)")


def _svg_line_chart(series: dict[str, dict[int, float]],
                    width: int = 560, height: int = 200,
                    xlabel: str = "cycle") -> str:
    """Multi-series SVG line chart (≤3 series; 2px lines, 8px markers)."""
    series = {k: s for k, s in list(series.items())[:3] if s}
    if not series:
        return ""
    xs = sorted({x for s in series.values() for x in s})
    vals = [v for s in series.values() for v in s.values()]
    lo, hi = min(vals), max(vals)
    if hi - lo <= 0:
        lo, hi = lo - 0.5, hi + 0.5
    pad_l, pad_r, pad_t, pad_b = 48, 12, 8, 22
    pw, ph = width - pad_l - pad_r, height - pad_t - pad_b

    def px(x):
        i = xs.index(x)
        return pad_l + (i / max(len(xs) - 1, 1)) * pw

    def py(v):
        return pad_t + (1 - (v - lo) / (hi - lo)) * ph

    out = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
           f'height="{height}" role="img">']
    for frac in (0.0, 0.5, 1.0):
        y = pad_t + frac * ph
        out.append(
            f'<line x1="{pad_l}" y1="{y:.1f}" x2="{width - pad_r}" '
            f'y2="{y:.1f}" stroke="var(--gridline)" stroke-width="1"/>'
        )
    out.append(
        f'<line x1="{pad_l}" y1="{pad_t + ph}" x2="{width - pad_r}" '
        f'y2="{pad_t + ph}" stroke="var(--baseline)" stroke-width="1"/>'
    )
    out.append(f'<text x="{pad_l - 6}" y="{pad_t + 4}" '
               f'text-anchor="end">{_fmt(hi, 3)}</text>')
    out.append(f'<text x="{pad_l - 6}" y="{pad_t + ph + 4}" '
               f'text-anchor="end">{_fmt(lo, 3)}</text>')
    for x in xs:
        out.append(f'<text x="{px(x):.1f}" y="{height - 6}" '
                   f'text-anchor="middle">{x}</text>')
    out.append(f'<text x="{width - pad_r}" y="{height - 6}" '
               f'text-anchor="end">{_html.escape(xlabel)}</text>')
    for (name, s), color in zip(series.items(), _SERIES_VARS):
        pts = " ".join(f"{px(x):.1f},{py(v):.1f}"
                       for x, v in sorted(s.items()))
        out.append(f'<polyline points="{pts}" fill="none" stroke="{color}" '
                   f'stroke-width="2"/>')
        for x, v in sorted(s.items()):
            out.append(
                f'<circle cx="{px(x):.1f}" cy="{py(v):.1f}" r="4" '
                f'fill="{color}"><title>{_html.escape(str(name))}, '
                f'{xlabel} {x}: {_fmt(v)}</title></circle>'
            )
    out.append("</svg>")
    return "".join(out)


def _svg_rank_bars(per_rank: dict[int, float], width: int = 560,
                   height: int = 160, unit: str = "") -> str:
    """Horizontal per-rank bar chart (single series, slot-1 hue)."""
    if not per_rank:
        return ""
    ranks = sorted(per_rank)
    hi = max(per_rank.values()) or 1.0
    pad_l, pad_r = 48, 12
    pw = width - pad_l - pad_r
    bar_h, gap = 14, 4
    height = max(height, len(ranks) * (bar_h + gap) + 10)
    out = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
           f'height="{height}" role="img">']
    for i, r in enumerate(ranks):
        y = 4 + i * (bar_h + gap)
        w = (per_rank[r] / hi) * pw if hi else 0
        out.append(f'<text x="{pad_l - 6}" y="{y + bar_h - 3}" '
                   f'text-anchor="end">r{r}</text>')
        out.append(
            f'<rect x="{pad_l}" y="{y}" width="{max(w, 1):.1f}" '
            f'height="{bar_h}" rx="2" fill="var(--series-1)">'
            f'<title>rank {r}: {_fmt(per_rank[r])}{unit}</title></rect>'
        )
    out.append("</svg>")
    return "".join(out)


_KIND_COLORS = {
    "work": "var(--series-1)",
    "comm": "var(--series-2)",
    "idle": "var(--series-3)",
}


def _svg_critical_lane(analysis, width: int = 940, height: int = 44,
                       label: str = "path") -> str:
    """One horizontal lane tiling [0, makespan] with the path segments.

    Each segment is coloured by its kind (work / comm / idle); the tooltip
    carries the phase, the rank on the path, and the segment's seconds.
    The lane's clock (virtual or wall) comes from the analysis itself.
    """
    if analysis.makespan <= 0 or not analysis.segments:
        return ""
    unit = "wall" if analysis.clock == "wall" else "virtual"
    pad_l, pad_r, pad_t = 72, 12, 4
    pw = width - pad_l - pad_r

    def px(t):
        return pad_l + (t / analysis.makespan) * pw

    out = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
           f'height="{height}" role="img">']
    out.append(f'<text x="{pad_l - 6}" y="{pad_t + 14}" '
               f'text-anchor="end">{_html.escape(label)}</text>')
    for seg in analysis.segments:
        w = max(px(seg.t1) - px(seg.t0), 0.5)
        who = "framework" if seg.rank is None else f"rank {seg.rank}"
        color = _KIND_COLORS.get(seg.kind, "var(--baseline)")
        out.append(
            f'<rect x="{px(seg.t0):.1f}" y="{pad_t}" width="{w:.1f}" '
            f'height="18" fill="{color}">'
            f"<title>{_html.escape(seg.phase)} — {_html.escape(who)} "
            f"{_html.escape(seg.kind)}: {_fmt(seg.seconds)} s "
            f"({_fmt(seg.t0)} .. {_fmt(seg.t1)})</title></rect>"
        )
    out.append(f'<text x="{pad_l}" y="{height - 4}">0 s</text>')
    out.append(f'<text x="{width - pad_r}" y="{height - 4}" '
               f'text-anchor="end">{_fmt(analysis.makespan)} s ({unit})'
               f"</text>")
    out.append("</svg>")
    return "".join(out)


def _html_table(headers: list[str], rows: list[list[str]]) -> str:
    out = ["<table><thead><tr>"]
    out.extend(f"<th>{_html.escape(h)}</th>" for h in headers)
    out.append("</tr></thead><tbody>")
    for row in rows:
        out.append("<tr>" + "".join(
            f"<td>{_html.escape(str(c))}</td>" for c in row) + "</tr>")
    out.append("</tbody></table>")
    return "".join(out)


def _legend(names: list[str]) -> str:
    chips = "".join(
        f'<span class="chip" style="background:{color}"></span>'
        f"{_html.escape(name)}"
        for name, color in zip(names, _SERIES_VARS)
    )
    return f'<div class="legend">{chips}</div>'


_MAX_TIMELINE_SPANS = 600
_MAX_TIMELINE_EVENTS = 1500


def _svg_timeline(tracer: Tracer, width: int = 940) -> tuple[str, str]:
    """Per-rank timeline: span bands per lane plus VM event ticks.

    Returns ``(svg, caption)``; the caption notes any downsampling.
    """
    makespan = _makespan(tracer)
    if makespan <= 0:
        return "", ""
    spans = [s for s in tracer.spans if not s.open]
    events = [e for e in tracer.events if e.rank is not None]
    notes = []
    if len(spans) > _MAX_TIMELINE_SPANS:
        notes.append(f"showing {_MAX_TIMELINE_SPANS} of {len(spans)} spans "
                     "(longest kept)")
        spans = sorted(spans, key=lambda s: s.v_duration,
                       reverse=True)[:_MAX_TIMELINE_SPANS]
    if len(events) > _MAX_TIMELINE_EVENTS:
        stride = -(-len(events) // _MAX_TIMELINE_EVENTS)
        notes.append(f"showing every {stride}th of {len(events)} VM events")
        events = events[::stride]

    ranks = sorted({s.rank for s in spans if s.rank is not None}
                   | {e.rank for e in events})
    lanes = [None] + ranks  # lane 0 = framework (un-ranked spans)
    lane_of = {r: i for i, r in enumerate(lanes)}
    max_depth = max([s.depth for s in spans] or [0])
    lane_h = 14 * (max_depth + 1) + 6
    pad_l, pad_r, pad_t = 72, 12, 6
    pw = width - pad_l - pad_r
    height = pad_t + len(lanes) * lane_h + 20

    def px(t):
        return pad_l + (t / makespan) * pw

    out = [f'<svg viewBox="0 0 {width} {height}" width="{width}" '
           f'height="{height}" role="img">']
    for i, lane in enumerate(lanes):
        y = pad_t + i * lane_h
        label = "framework" if lane is None else f"rank {lane}"
        out.append(f'<text x="{pad_l - 6}" y="{y + 12}" '
                   f'text-anchor="end">{label}</text>')
        out.append(f'<line x1="{pad_l}" y1="{y + lane_h - 2}" '
                   f'x2="{width - pad_r}" y2="{y + lane_h - 2}" '
                   f'stroke="var(--gridline)" stroke-width="1"/>')
    for s in spans:
        lane = lane_of.get(s.rank, 0)
        y = pad_t + lane * lane_h + 2 + s.depth * 14
        w = max((s.v_duration / makespan) * pw, 1.0)
        out.append(
            f'<rect x="{px(s.v_start):.1f}" y="{y}" width="{w:.1f}" '
            f'height="10" rx="2" fill="var(--series-1)" '
            f'fill-opacity="{max(0.25, 0.9 - 0.18 * s.depth):.2f}">'
            f'<title>{_html.escape(s.name)}: {_fmt(s.v_duration)} s virtual '
            f'(start {_fmt(s.v_start)})</title></rect>'
        )
    for e in events:
        lane = lane_of.get(e.rank, 0)
        y = pad_t + lane * lane_h + lane_h - 8
        out.append(
            f'<line x1="{px(e.v_time):.1f}" y1="{y}" '
            f'x2="{px(e.v_time):.1f}" y2="{y + 5}" '
            f'stroke="var(--series-2)" stroke-width="1">'
            f'<title>{_html.escape(e.name)} @ {_fmt(e.v_time)} s</title>'
            f"</line>"
        )
    out.append(f'<text x="{pad_l}" y="{height - 6}">0 s</text>')
    out.append(f'<text x="{width - pad_r}" y="{height - 6}" '
               f'text-anchor="end">{_fmt(makespan)} s (virtual)</text>')
    out.append("</svg>")
    return "".join(out), "; ".join(notes)


def render_html(tracer: Tracer, title: str = "repro run report",
                source: str = "", top: int = 10) -> str:
    """Render the trace as a single self-contained HTML report."""
    reg = tracer.metrics
    rows = _cycle_rows(tracer)
    cycles = reg.cycles()
    makespan = _makespan(tracer)
    sections: list[str] = []

    tiles = [
        ("cycles", str(len(cycles))),
        ("virtual makespan", f"{_fmt(makespan)} s"),
        ("metric samples", str(len(reg))),
        ("max imbalance (before)",
         _fmt(reg.max_value("repro.partition.imbalance", {"when": "before"}))),
        ("max imbalance (after)",
         _fmt(reg.max_value("repro.partition.imbalance", {"when": "after"}))),
        ("total remap words",
         _fmt(reg.total("repro.remap.words_moved"))),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="v">{_html.escape(v)}</div>'
        f'<div class="k">{_html.escape(k)}</div></div>'
        for k, v in tiles
    )
    sections.append(f'<section><div class="tiles">{tile_html}</div></section>')

    imb = {
        "before": _series(tracer, "repro.partition.imbalance", when="before"),
        "after": _series(tracer, "repro.partition.imbalance", when="after"),
    }
    imb = {k: s for k, s in imb.items() if s}
    if imb:
        chart = _svg_line_chart(imb)
        table = _html_table(
            ["cycle", "imbalance before", "imbalance after", "edge cut before",
             "edge cut after", "diag %", "accepted"],
            [[
                r["cycle"], _fmt(r["imb_before"]), _fmt(r["imb_after"]),
                _fmt(r["cut_before"]), _fmt(r["cut_after"]),
                "-" if r["diag_fraction"] is None
                else f"{100 * r['diag_fraction']:.1f}",
                "-" if r["accepted"] is None
                else ("yes" if r["accepted"] else "no"),
            ] for r in rows],
        )
        sections.append(
            "<section><h2>Partition quality by cycle</h2>"
            + _legend(list(imb)) + chart + table + "</section>"
        )

    tv = {m: _series(tracer, "repro.reassign.total_v", method=m)
          for m in ("greedy", "mwbg")}
    tv = {k: s for k, s in tv.items() if s}
    if tv:
        chart = _svg_line_chart(tv)
        table = _html_table(
            ["cycle", "TotalV greedy", "TotalV mwbg", "MaxV greedy",
             "MaxV mwbg", "MaxSR greedy", "MaxSR mwbg"],
            [[
                r["cycle"],
                _fmt(r["total_v_greedy"]), _fmt(r["total_v_mwbg"]),
                _fmt(r["max_v_greedy"]), _fmt(r["max_v_mwbg"]),
                _fmt(r["max_sr_greedy"]), _fmt(r["max_sr_mwbg"]),
            ] for r in rows],
        )
        sections.append(
            "<section><h2>Reassignment cost (TotalV / MaxV / MaxSR)</h2>"
            + _legend(list(tv)) + chart + table + "</section>"
        )

    timeline, note = _svg_timeline(tracer)
    if timeline:
        caption = f'<div class="caption">{_html.escape(note)}</div>' if note else ""
        sections.append(
            "<section><h2>Per-rank timeline (virtual clock)</h2>"
            + timeline + caption + "</section>"
        )

    analysis = _causal_analysis(tracer)
    wall = _wall_analysis(tracer)
    if analysis is not None or wall is not None:
        primary = analysis if analysis is not None else wall
        lane = ""
        if analysis is not None:
            lane += _svg_critical_lane(analysis, label="modelled")
        if wall is not None:
            # measured-vs-modelled overlay: the wall lane right under the
            # virtual one, each normalized to its own makespan
            lane += _svg_critical_lane(wall, label="measured")
        if analysis is not None and wall is not None:
            lane += (
                '<div class="caption">each lane spans its own makespan: '
                f"modelled {_fmt(analysis.makespan)} virtual s, measured "
                f"{_fmt(wall.makespan)} wall s</div>"
            )
        attribution = _html_table(
            ["phase", "kind", "seconds", "share %"],
            [[
                phase, kind, _fmt(sec),
                f"{100.0 * sec / (primary.makespan or 1.0):.1f}",
            ] for (phase, kind), sec in sorted(
                primary.by_phase_kind.items(), key=lambda kv: -kv[1]
            )],
        )
        body = _legend(list(_KIND_COLORS)) + lane + attribution
        on_path, slack = _rank_path_stats(primary)
        if on_path:
            body += (
                "<h2>Seconds on the critical path, per rank</h2>"
                + _svg_rank_bars(on_path, unit=" s on path")
            )
        if slack and any(v > 0 for v in slack.values()):
            body += (
                "<h2>Slack per rank (summed over vm runs)</h2>"
                + _svg_rank_bars(slack, unit=" s slack")
                + '<div class="caption">a rank with zero slack is on the '
                "critical path of every run it appears in</div>"
            )
        sections.append(
            "<section><h2>Critical path (causal record)</h2>"
            + body + "</section>"
        )

    for label, cols, labels in (
            ("virtual machine", _VM_COLS, {}),
            ("cost ledger", _LEDGER_COLS, {}),
            ("measured, wall clock", _VM_WALL_COLS, {"clock": "wall"})):
        headers, rank_rows = _rank_rows(tracer, cols, labels=labels)
        if not rank_rows:
            continue
        words = reg.per_rank(
            "repro.ledger.words_sent" if label == "cost ledger"
            else "repro.vm.words_sent",
            labels=labels,
        )
        bars = _svg_rank_bars(words, unit=" words sent")
        table = _html_table(
            headers, [[_fmt(c) for c in row] for row in rank_rows]
        )
        sections.append(
            f"<section><h2>Per-rank traffic — {label}</h2>"
            + bars + table + "</section>"
        )

    for backend in _transport_backends(tracer):
        labels = {"backend": backend} if backend else {}
        headers, rank_rows = _rank_rows(tracer, _TRANSPORT_COLS,
                                        labels=labels)
        if not rank_rows:
            continue
        bars = _svg_rank_bars(
            reg.per_rank("repro.transport.bytes_zero_copy", labels=labels),
            unit=" zero-copy bytes",
        )
        table = _html_table(
            headers, [[_fmt(c) for c in row] for row in rank_rows]
        )
        sections.append(
            f"<section><h2>Transport counters — {_html.escape(backend or 'backend')}</h2>"
            + bars + table + "</section>"
        )

    res_headers, res_rows = _resource_rows(tracer)
    if res_rows:
        from .resource import resource_peaks

        peaks = resource_peaks(tracer.resource_samples)
        rss_by_rank = {
            k: d["peak_rss_bytes"] / (1 << 20)
            for k, d in peaks.items() if k is not None
        }
        bars = _svg_rank_bars(rss_by_rank, unit=" MiB peak RSS") \
            if rss_by_rank else ""
        sections.append(
            "<section><h2>Resource usage (per process)</h2>"
            + bars + _html_table(res_headers, res_rows) + "</section>"
        )

    spans = _top_spans(tracer, top)
    if spans:
        table = _html_table(
            ["name", "depth", "v_start (s)", "virtual (s)", "wall (s)"],
            [[s.name, s.depth, _fmt(s.v_start), _fmt(s.v_duration),
              _fmt(s.wall_duration, 3)] for s in spans],
        )
        sections.append(
            f"<section><h2>Top {len(spans)} spans by virtual duration</h2>"
            + table + "</section>"
        )

    sub = _html.escape(source) if source else ""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_html.escape(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        '<body class="viz-root">\n'
        f"<h1>{_html.escape(title)}</h1>\n"
        f'<p class="sub">{sub}</p>\n'
        + "\n".join(sections)
        + "\n</body></html>\n"
    )
