"""Labelled time-series metrics registry (trace record type ``metric``).

The flat ``Tracer.counters``/``gauges`` dicts cannot tell two instrumented
sites apart: two call sites using the same name silently merge into one
number, and nothing records *when* (which adaptation cycle) or *where*
(which virtual rank) a value was observed.  This module gives every
quantity of the solve → adapt → balance cycle a first-class time series:
samples are keyed by ``(name, labels, cycle, rank)`` and carry the virtual
timestamp at which they were recorded.

Naming convention
-----------------
``repro.<subsystem>.<quantity>`` — e.g. ``repro.partition.imbalance``,
``repro.reassign.total_v``, ``repro.vm.words_sent``.  Qualifiers that are
*dimensions* of the same quantity go into labels (``method="greedy"``,
``when="before"``, ``phase="remap"``), never into the name.

Kinds
-----
``counter``
    Monotone accumulation: recording again under the same key *adds*.
``gauge``
    Last-write-wins observation of a level.
``histogram``
    Every observation under a key is kept (a list of values), for
    quantities sampled many times per cycle (e.g. solver residuals).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

__all__ = ["KINDS", "RESERVED_LABEL_KEYS", "MetricSample", "MetricsRegistry"]

#: Valid metric kinds, in the order they serialise.
KINDS = ("counter", "gauge", "histogram")

#: Label keys excluded from the per-name keyset-alignment check: the same
#: quantity may legitimately exist both as a modelled series (no ``clock``
#: label) and as a measured one (``clock="wall"``), e.g. ``repro.vm.*``
#: from the virtual machine and from a real-core backend's recorder.
#: Queries must still pin the label (``labels={}`` vs
#: ``labels={"clock": "wall"}``) to keep the two series apart.
RESERVED_LABEL_KEYS = frozenset({"clock"})


@dataclass(frozen=True)
class MetricSample:
    """One point (or, for histograms, one bag of points) of a metric series."""

    name: str
    kind: str  #: one of :data:`KINDS`
    value: float | list
    labels: tuple[tuple[str, str], ...] = ()  #: sorted (key, value) pairs
    cycle: int | None = None  #: adaptation cycle the sample belongs to
    rank: int | None = None  #: virtual processor, where one applies
    v_time: float = 0.0  #: virtual clock when (last) recorded

    @property
    def labels_dict(self) -> dict[str, str]:
        return dict(self.labels)


def _freeze_labels(labels: dict | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Counter/gauge/histogram samples keyed by ``(name, labels, cycle, rank)``.

    Insertion order is preserved (stable export).  A name is bound to one
    kind and one label keyset for the lifetime of the registry: a kind
    mismatch raises, a label-keyset mismatch (the silent-merge hazard the
    flat dicts had) warns once per name, as does sharing a name with a
    legacy flat counter/gauge (see :meth:`note_legacy`).
    """

    def __init__(self):
        self._samples: dict[tuple, MetricSample] = {}
        self._kind: dict[str, str] = {}
        self._labelsets: dict[str, frozenset] = {}
        self._legacy: set[str] = set()
        self._warned: set[str] = set()
        #: bulk per-rank batches accepted but not yet turned into samples
        self._pending: list[tuple] = []

    def __len__(self) -> int:
        if self._pending:
            self._flush_pending()
        return len(self._samples)

    def __bool__(self) -> bool:  # an empty registry is falsy, like a dict
        return bool(self._samples) or bool(self._pending)

    # --- recording ---------------------------------------------------------

    def record(
        self,
        name: str,
        value,
        kind: str = "gauge",
        labels: dict | None = None,
        cycle: int | None = None,
        rank: int | None = None,
        v_time: float = 0.0,
    ) -> MetricSample:
        """Record one sample; returns the (possibly merged) stored sample."""
        if self._pending:
            self._flush_pending()
        if kind not in KINDS:
            raise ValueError(f"unknown metric kind {kind!r}; choose from {KINDS}")
        bound = self._kind.setdefault(name, kind)
        if bound != kind:
            raise ValueError(
                f"metric {name!r} is a {bound}, cannot record it as a {kind}"
            )
        frozen = _freeze_labels(labels)
        keyset = frozenset(k for k, _v in frozen) - RESERVED_LABEL_KEYS
        seen = self._labelsets.setdefault(name, keyset)
        if seen != keyset:
            self._warn(
                name,
                f"metric {name!r} recorded with label keys "
                f"{sorted(keyset)} after {sorted(seen)}; series with "
                "different label keys will not align",
            )
        if name in self._legacy:
            self._warn(
                name,
                f"metric {name!r} collides with a legacy flat "
                "counter/gauge of the same name; migrate the legacy site "
                "to the labelled registry",
            )

        key = (name, frozen, cycle, rank)
        prev = self._samples.get(key)
        if kind == "histogram":
            values = list(prev.value) if prev is not None else []
            values.extend(value if isinstance(value, (list, tuple)) else [value])
            stored = values
        elif kind == "counter":
            stored = float(value) + (float(prev.value) if prev is not None else 0.0)
        else:  # gauge: last write wins
            stored = float(value)
        sample = MetricSample(
            name=name, kind=kind, value=stored, labels=frozen,
            cycle=cycle, rank=rank, v_time=v_time,
        )
        self._samples[key] = sample
        return sample

    def record_per_rank(
        self,
        name: str,
        values,
        kind: str = "counter",
        cycle: int | None = None,
        v_time: float = 0.0,
        skip_zero: bool = False,
    ) -> None:
        """Bulk-record one unlabelled sample per rank (rank = list index).

        Equivalent to calling :meth:`record` once per rank with
        ``labels=None``, but the kind/labelset/legacy checks run once for
        the whole batch instead of once per rank, and the per-rank
        :class:`MetricSample` objects are built lazily: the batch is
        queued here in O(1) extra work and materialized on the first
        query (``samples``, ``get``, ``per_rank``, ...), so an emitting
        hot path — the VM scheduler records seven series per run at 16k+
        ranks — never pays for samples nobody reads.  With ``skip_zero``,
        ranks whose value is falsy are not sampled (matching call sites
        that only emit non-zero observations).
        """
        if kind not in KINDS:
            raise ValueError(f"unknown metric kind {kind!r}; choose from {KINDS}")
        bound = self._kind.setdefault(name, kind)
        if bound != kind:
            raise ValueError(
                f"metric {name!r} is a {bound}, cannot record it as a {kind}"
            )
        keyset: frozenset = frozenset()
        seen = self._labelsets.setdefault(name, keyset)
        if seen != keyset:
            self._warn(
                name,
                f"metric {name!r} recorded with label keys "
                f"{sorted(keyset)} after {sorted(seen)}; series with "
                "different label keys will not align",
            )
        if name in self._legacy:
            self._warn(
                name,
                f"metric {name!r} collides with a legacy flat "
                "counter/gauge of the same name; migrate the legacy site "
                "to the labelled registry",
            )
        self._pending.append(
            (name, kind, tuple(values), cycle, v_time, skip_zero)
        )

    def _flush_pending(self) -> None:
        """Materialize queued :meth:`record_per_rank` batches, in call order."""
        pending, self._pending = self._pending, []
        samples = self._samples
        get = samples.get
        new = MetricSample.__new__
        setdict = object.__setattr__
        for name, kind, values, cycle, v_time, skip_zero in pending:
            for rank, value in enumerate(values):
                if skip_zero and not value:
                    continue
                key = (name, (), cycle, rank)
                prev = get(key)
                if kind == "histogram":
                    vals = list(prev.value) if prev is not None else []
                    vals.extend(
                        value if isinstance(value, (list, tuple)) else [value]
                    )
                    stored: float | list = vals
                elif kind == "counter":
                    stored = float(value) + (
                        float(prev.value) if prev is not None else 0.0
                    )
                else:  # gauge: last write wins
                    stored = float(value)
                # construct the frozen sample by writing its __dict__
                # wholesale: the generated frozen __init__ pays
                # object.__setattr__ per field, ~3x slower, and this loop
                # runs once per rank at 16k+ ranks per emitted series
                s = new(MetricSample)
                setdict(s, "__dict__", {
                    "name": name, "kind": kind, "value": stored, "labels": (),
                    "cycle": cycle, "rank": rank, "v_time": v_time,
                })
                samples[key] = s

    def counter(self, name: str, value=1.0, **kw) -> MetricSample:
        return self.record(name, value, kind="counter", **kw)

    def gauge(self, name: str, value, **kw) -> MetricSample:
        return self.record(name, value, kind="gauge", **kw)

    def histogram(self, name: str, value, **kw) -> MetricSample:
        return self.record(name, value, kind="histogram", **kw)

    def note_legacy(self, name: str) -> None:
        """Register a legacy flat-dict counter/gauge name for collision checks."""
        self._legacy.add(name)
        if name in self._kind:
            self._warn(
                name,
                f"legacy counter/gauge {name!r} collides with a labelled "
                "metric of the same name; migrate the legacy site to the "
                "labelled registry",
            )

    def _warn(self, name: str, message: str) -> None:
        if name not in self._warned:
            self._warned.add(name)
            warnings.warn(message, RuntimeWarning, stacklevel=4)

    # --- queries -----------------------------------------------------------

    def samples(self) -> list[MetricSample]:
        """All stored samples, in first-recorded order."""
        if self._pending:
            self._flush_pending()
        return list(self._samples.values())

    def names(self) -> list[str]:
        """Sorted distinct metric names."""
        return sorted(self._kind)

    def _match(self, name: str, labels: dict | None, cycle, rank,
               any_cycle: bool, any_rank: bool):
        if self._pending:
            self._flush_pending()
        frozen = _freeze_labels(labels) if labels is not None else None
        for s in self._samples.values():
            if s.name != name:
                continue
            if frozen is not None and s.labels != frozen:
                continue
            if not any_cycle and s.cycle != cycle:
                continue
            if not any_rank and s.rank != rank:
                continue
            yield s

    def get(self, name: str, labels: dict | None = None,
            cycle: int | None = None, rank: int | None = None):
        """Exact-key lookup; returns the stored value or None."""
        if self._pending:
            self._flush_pending()
        key = (name, _freeze_labels(labels), cycle, rank)
        s = self._samples.get(key)
        return None if s is None else s.value

    def series(self, name: str, labels: dict | None = None,
               rank: int | None = None) -> dict[int, float | list]:
        """``{cycle: value}`` for one (name, labels, rank) over all cycles.

        With ``labels=None`` the label set is not filtered (useful for
        unlabelled metrics); samples without a cycle are skipped.
        """
        out: dict[int, float | list] = {}
        for s in self._match(name, labels, None, rank,
                             any_cycle=True, any_rank=False):
            if s.cycle is not None:
                out[s.cycle] = s.value
        return dict(sorted(out.items()))

    def per_rank(self, name: str, labels: dict | None = None,
                 cycle: int | None = None) -> dict[int, float]:
        """``{rank: value}`` summed over cycles (or one ``cycle`` if given)."""
        out: dict[int, float] = {}
        for s in self._match(name, labels, cycle, None,
                             any_cycle=cycle is None, any_rank=True):
            if s.rank is None:
                continue
            v = sum(s.value) if isinstance(s.value, list) else float(s.value)
            out[s.rank] = out.get(s.rank, 0.0) + v
        return dict(sorted(out.items()))

    def _values(self, name: str, labels: dict | None):
        for s in self._match(name, labels, None, None,
                             any_cycle=True, any_rank=True):
            if isinstance(s.value, list):
                yield from (float(v) for v in s.value)
            else:
                yield float(s.value)

    def total(self, name: str, labels: dict | None = None) -> float:
        """Sum of every matching sample's value (0.0 when none match)."""
        return sum(self._values(name, labels))

    def max_value(self, name: str, labels: dict | None = None) -> float | None:
        """Max over every matching sample's value (None when none match)."""
        vals = list(self._values(name, labels))
        return max(vals) if vals else None

    def ranks(self, name: str | None = None) -> list[int]:
        """Sorted distinct ranks seen (optionally for one metric name)."""
        if self._pending:
            self._flush_pending()
        return sorted({
            s.rank for s in self._samples.values()
            if s.rank is not None and (name is None or s.name == name)
        })

    def cycles(self) -> list[int]:
        """Sorted distinct cycle ids seen across all samples."""
        if self._pending:
            self._flush_pending()
        return sorted({
            s.cycle for s in self._samples.values() if s.cycle is not None
        })
