"""Phase-span tracer with separate virtual and wall clocks.

The tracer keeps a single monotonically increasing *virtual* clock (the
modelled machine time; see :mod:`repro.parallel.machine`).  Opening a span
snapshots both clocks; instrumented code charges modelled seconds with
:meth:`Tracer.advance`, which moves the virtual clock forward inside the
innermost open span; closing the span snapshots both clocks again.  Span
nesting is strict (LIFO), so the span tree mirrors the call tree and a
parent's virtual duration is always at least the sum of its children's.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from dataclasses import dataclass, field

from .metrics import MetricsRegistry

__all__ = [
    "PointEvent",
    "Span",
    "Tracer",
    "current_tracer",
    "maybe_phase",
    "phase_virtual_times",
    "use_tracer",
]


@dataclass
class Span:
    """One phase of execution, clocked in virtual and wall seconds."""

    name: str
    index: int  #: position in ``Tracer.spans`` (stable id for parent links)
    parent: int | None  #: index of the enclosing span, None for roots
    depth: int  #: nesting depth (0 for roots)
    v_start: float  #: virtual seconds at open
    wall_start: float  #: host ``perf_counter()`` at open
    v_end: float | None = None
    wall_end: float | None = None
    rank: int | None = None  #: virtual processor, where one applies
    attrs: dict = field(default_factory=dict)

    @property
    def open(self) -> bool:
        return self.wall_end is None

    @property
    def v_duration(self) -> float:
        """Modelled (virtual-machine) seconds spent in this span."""
        return 0.0 if self.v_end is None else self.v_end - self.v_start

    @property
    def wall_duration(self) -> float:
        """Host wall-clock seconds spent in this span."""
        return 0.0 if self.wall_end is None else self.wall_end - self.wall_start


@dataclass(frozen=True)
class PointEvent:
    """An instantaneous occurrence on the virtual timeline (e.g. one
    virtual-machine send/recv/probe, or a decision being taken)."""

    name: str
    v_time: float
    rank: int | None = None
    span: int | None = None  #: index of the span open when it was recorded
    attrs: dict = field(default_factory=dict)


class Tracer:
    """Collects spans, point events, counters, and gauges for one run.

    Not thread-safe; each run (or experiment sweep) should own one tracer.
    """

    def __init__(self, wall_clock=time.perf_counter, hub=None):
        self.spans: list[Span] = []
        self._events: list[PointEvent] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.metrics = MetricsRegistry()
        self._causal_nodes: list = []
        self._causal_msgs: list = []
        #: Live telemetry hub (:class:`repro.obs.live.TelemetryHub`)
        #: phase/cycle/run frames publish into; resolved from the ambient
        #: hub (:func:`repro.obs.live.use_live`) when not given.  None
        #: keeps the whole live path to one attribute check per hook.
        if hub is None:
            from .live import current_live

            hub = current_live()
        self.hub = hub
        #: Periodic process-resource samples
        #: (:class:`repro.obs.resource.ResourceSample`), serialised as
        #: ``resource`` records in the v5 JSONL schema.
        self.resource_samples: list = []
        #: Per-(run, rank) clock-alignment records from measured backends
        #: (:class:`repro.obs.wallclock.ClockRecord`): the offset subtracted
        #: from that rank's ``perf_counter`` stream and the estimation
        #: uncertainty (half the best handshake round trip).
        self.clock_records: list = []
        #: Columnar VM-run records registered via :meth:`add_vm_chunk`,
        #: not yet expanded into the three lists above: ``(record,
        #: event position, virtual-time base, enclosing span index)``.
        self._vm_chunks: list = []
        self.cycle: int | None = None  #: current adaptation cycle id
        self._next_cycle = 0
        self._next_run = 0
        self._stack: list[Span] = []
        self._vclock = 0.0
        self._wall = wall_clock

    # --- lazily mirrored VM records -----------------------------------------

    @property
    def events(self) -> list[PointEvent]:
        """All point events, in record order (flushes pending VM chunks)."""
        self._flush_vm()
        return self._events

    @property
    def causal_nodes(self) -> list:
        """Causal record of every traced VM run (see :mod:`repro.obs.causal`):
        happens-before DAG nodes, grouped by the run id carried in
        ``vm.run`` marker events."""
        self._flush_vm()
        return self._causal_nodes

    @property
    def causal_msgs(self) -> list:
        """The messages linking :attr:`causal_nodes` across ranks."""
        self._flush_vm()
        return self._causal_msgs

    def add_vm_chunk(self, record, base: float) -> None:
        """Register a VM run's columnar record (``runtime._VMRecord``) for
        lazy mirroring: its ``vm.<kind>`` point events and causal
        nodes/msgs materialize only when :attr:`events` /
        :attr:`causal_nodes` / :attr:`causal_msgs` is next read, spliced
        in at the position this call reserved (right after the run's
        ``vm.run`` marker), so flushed order equals eager order."""
        self._vm_chunks.append((
            record,
            len(self._events),
            base,
            self._stack[-1].index if self._stack else None,
        ))

    def _flush_vm(self) -> None:
        if not self._vm_chunks:
            return
        chunks = self._vm_chunks
        self._vm_chunks = []
        evs = self._events
        out: list[PointEvent] = []
        prev = 0
        for record, pos, base, span in chunks:
            out.extend(evs[prev:pos])
            prev = pos
            ap = out.append
            for ev in record.trace_events():
                ap(PointEvent(
                    name="vm." + ev.kind,
                    v_time=base + ev.time,
                    rank=ev.rank,
                    span=span,
                    attrs={"detail": list(ev.detail)},
                ))
            self._causal_nodes.extend(record.causal_nodes())
            self._causal_msgs.extend(record.causal_msgs())
        out.extend(evs[prev:])
        evs[:] = out  # in place: callers may hold the list

    # --- clocks ------------------------------------------------------------

    @property
    def virtual_now(self) -> float:
        """Current position of the modelled-time clock (seconds)."""
        return self._vclock

    def advance(self, seconds: float) -> None:
        """Charge ``seconds`` of modelled time to the innermost open span."""
        if seconds < 0:
            raise ValueError(f"cannot advance virtual time by {seconds}")
        self._vclock += seconds

    # --- spans -------------------------------------------------------------

    @contextmanager
    def phase(self, name: str, rank: int | None = None, **attrs):
        """Open a nested phase span for the duration of the ``with`` body."""
        span = Span(
            name=name,
            index=len(self.spans),
            parent=self._stack[-1].index if self._stack else None,
            depth=len(self._stack),
            v_start=self._vclock,
            wall_start=self._wall(),
            rank=rank,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        self._stack.append(span)
        hub = self.hub
        if hub is not None:
            hub.publish("phase_begin", name=name, rank=rank)
        try:
            yield span
        finally:
            popped = self._stack.pop()
            assert popped is span, "span stack corrupted (non-LIFO close)"
            span.v_end = self._vclock
            span.wall_end = self._wall()
            if hub is not None:
                hub.publish(
                    "phase_end", name=name, rank=rank,
                    v_seconds=span.v_duration,
                    wall_seconds=span.wall_duration,
                )

    # --- events, counters, gauges -----------------------------------------

    def event(
        self,
        name: str,
        v_time: float | None = None,
        rank: int | None = None,
        **attrs,
    ) -> PointEvent:
        """Record a point event; defaults to the current virtual time."""
        ev = PointEvent(
            name=name,
            v_time=self._vclock if v_time is None else v_time,
            rank=rank,
            span=self._stack[-1].index if self._stack else None,
            attrs=dict(attrs),
        )
        self._events.append(ev)
        if self.hub is not None and name == "vm.run":
            self.hub.publish(
                "run",
                makespan=attrs.get("makespan"),
                nranks=attrs.get("nranks"),
                backend=attrs.get("backend"),
                clock=attrs.get("clock", "virtual"),
            )
        return ev

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named flat (legacy) monotone counter.

        Flat counters have no labels, cycle, or rank, so two instrumented
        sites using the same name merge into one number — prefer
        :meth:`metric` for anything that needs a time series.  The name is
        noted in the labelled registry so a collision with a labelled
        metric warns instead of silently splitting the data in two.
        """
        self.metrics.note_legacy(name)
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set the named flat (legacy) gauge to its latest observed value."""
        self.metrics.note_legacy(name)
        self.gauges[name] = value

    # --- labelled metrics --------------------------------------------------

    def next_causal_run(self) -> int:
        """Allocate the id for the next traced virtual-machine run."""
        run = self._next_run
        self._next_run += 1
        return run

    def begin_cycle(self) -> int:
        """Start the next adaptation cycle; labelled metrics recorded until
        the next call default their ``cycle`` to the returned id."""
        self.cycle = self._next_cycle
        self._next_cycle += 1
        if self.hub is not None:
            self.hub.publish("cycle", cycle=self.cycle)
        return self.cycle

    def metric(
        self,
        name: str,
        value,
        kind: str = "gauge",
        rank: int | None = None,
        cycle: int | None = None,
        **labels,
    ):
        """Record a labelled metric sample (see :mod:`repro.obs.metrics`).

        ``cycle`` defaults to the current cycle (:meth:`begin_cycle`), and
        the sample is stamped with the current virtual time.  Label values
        are coerced to strings.
        """
        return self.metrics.record(
            name,
            value,
            kind=kind,
            labels=labels or None,
            cycle=self.cycle if cycle is None else cycle,
            rank=rank,
            v_time=self._vclock,
        )

    def metric_per_rank(
        self,
        name: str,
        values,
        kind: str = "counter",
        cycle: int | None = None,
        skip_zero: bool = False,
    ) -> None:
        """Record one unlabelled sample per rank (rank = list index) in a
        single registry call — the bulk form of :meth:`metric` the VM and
        cost ledger use for their per-rank traffic series."""
        if self.hub is not None and name in (
            "repro.vm.busy_seconds", "repro.vm.idle_seconds",
        ):
            self.hub.publish("rank_time", name=name, values=tuple(values))
        self.metrics.record_per_rank(
            name,
            values,
            kind=kind,
            cycle=self.cycle if cycle is None else cycle,
            v_time=self._vclock,
            skip_zero=skip_zero,
        )

    # --- queries ------------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in open order."""
        return [s for s in self.spans if s.name == name]

    def phase_virtual(self, name: str) -> float:
        """Total virtual seconds across every span with this name."""
        return sum(s.v_duration for s in self.find(name))


def phase_virtual_times(spans) -> dict[str, float]:
    """Sum virtual durations by span name over an iterable of spans."""
    out: dict[str, float] = {}
    for s in spans:
        out[s.name] = out.get(s.name, 0.0) + s.v_duration
    return out


# --- ambient tracer ---------------------------------------------------------

_CURRENT: ContextVar[Tracer | None] = ContextVar("repro_obs_tracer", default=None)


def current_tracer() -> Tracer | None:
    """The ambient tracer installed by :func:`use_tracer`, if any."""
    return _CURRENT.get()


@contextmanager
def use_tracer(tracer: Tracer):
    """Install ``tracer`` as the ambient tracer for the ``with`` body."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)


def maybe_phase(tracer: Tracer | None, name: str, rank: int | None = None, **attrs):
    """``tracer.phase(...)`` or a no-op context when ``tracer`` is None."""
    if tracer is None:
        return nullcontext()
    return tracer.phase(name, rank=rank, **attrs)
