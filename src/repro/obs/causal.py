"""Happens-before analysis of virtual-machine runs: critical paths, slack.

The :class:`~repro.parallel.runtime.VirtualMachine` records every operation
a rank executes as a :class:`CausalNode` — a half-open interval
``[t_start, t_end)`` of that rank's virtual clock — and every message as a
:class:`CausalMsg` linking its send node to the node that consumed it.
Together they form the happens-before DAG of the run:

* **program order** — consecutive nodes of one rank abut exactly
  (``t_start == predecessor.t_end``; per-rank node intervals tile
  ``[0, clock]`` with no gaps), and
* **message edges** — a recv that *waited* (``wait > 0``) ends exactly at
  the sender's clock when the send completed (``t_end == send.t_end`` as
  floats, because the scheduler stores the very same value).

The critical path is found by walking backward from the sink (the node
with the largest ``t_end``): at a recv that waited, cross to the sender;
otherwise step to the program-order predecessor.  Every edge taken is an
exact float equality, so the chain is *tight* all the way back to virtual
time zero and the reported :attr:`CriticalPath.length` — taken directly
from ``sink.t_end`` rather than summed over segments — equals
``RunResult.makespan`` to the last bit.

Slack is the classic latest-finish CPM quantity: how many virtual seconds
a node (or the best node of a rank) could slow down without moving the
run's makespan.  The sink always has slack exactly ``0.0``.

:func:`analyze` lifts all of this to a whole exported trace: every
``vm.run`` becomes a critical path placed at its absolute virtual time,
every ``ledger.superstep`` event contributes its bottleneck rank's
work/comm split, and the remaining virtual time is attributed to the
deepest enclosing phase span — yielding a (phase, rank, kind) breakdown
of the makespan, per-cycle straggler rankings, and the input to
``repro critical-path`` / ``repro diff``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "CausalMsg",
    "CausalNode",
    "CausalRun",
    "CriticalPath",
    "PathStep",
    "RankStats",
    "Segment",
    "TraceAnalysis",
    "TraceDiff",
    "analyze",
    "chain_of",
    "critical_path",
    "diff",
    "format_chain",
    "format_critical_path",
    "format_diff",
    "node_slack",
    "rank_stats",
    "run_from_result",
    "runs_from_tracer",
    "verify_makespans",
]

#: Node kinds recorded by the virtual machine.
NODE_KINDS = ("work", "elapse", "send", "recv", "probe")

#: Attribution of node kinds to the (work | comm) split.
KIND_OF = {
    "work": "work",
    "elapse": "work",
    "send": "comm",
    "recv": "comm",
    "probe": "comm",
}


@dataclass(slots=True)
class CausalNode:
    """One executed operation of one rank, on the run-local virtual clock."""

    run: int  #: id of the VM run this node belongs to
    id: int  #: creation order within the run; all DAG edges go low -> high
    rank: int
    kind: str  #: one of :data:`NODE_KINDS`
    t_start: float
    t_end: float
    wait: float = 0.0  #: seconds blocked inside a recv waiting for arrival
    msg: int | None = None  #: message consumed/produced, if any

    @property
    def local(self) -> float:
        """Busy (charged) seconds of this node — its duration minus wait."""
        return self.t_end - self.t_start - self.wait


@dataclass(slots=True)
class CausalMsg:
    """One message; links the send node to the node that consumed it."""

    run: int
    id: int  #: send order within the run
    src: int
    dst: int
    tag: int
    nwords: int
    send_node: int
    recv_node: int | None = None  #: recv/probe node id; None if unconsumed


@dataclass
class CausalRun:
    """One VM run's causal record, placed on the trace's timeline.

    Virtual runs (``clock="virtual"``) use the modelled clock and a
    ``base`` in trace virtual seconds.  Measured runs (``clock="wall"``,
    recorded by the real-core backends via :mod:`repro.obs.wallclock`)
    use aligned host wall seconds; their ``base`` is the raw parent
    ``perf_counter`` at the merged time zero, and they carry the
    alignment bookkeeping (``rank_makespan``, ``skew``) the measured
    makespan check needs.
    """

    id: int
    base: float  #: trace virtual time at which the run started
    nranks: int
    makespan: float
    nodes: list[CausalNode]
    msgs: list[CausalMsg]
    cycle: int | None = None
    phase: str | None = None  #: name of the span the run executed under
    clock: str = "virtual"  #: "virtual" (modelled) or "wall" (measured)
    rank_makespan: float | None = None  #: max own-clock rank duration (wall)
    skew: float = 0.0  #: clock-alignment error bound for wall runs


@dataclass(frozen=True)
class PathStep:
    """One backward-walk step of the critical path (time order)."""

    node: CausalNode
    kind: str  #: "work" or "comm"
    seconds: float  #: 0.0 for the recv side of a crossed message edge


@dataclass
class CriticalPath:
    run: CausalRun
    steps: list[PathStep]
    #: Exact path length — ``sink.t_end``, bit-identical to the run makespan.
    length: float

    def by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for s in self.steps:
            out[s.kind] = out.get(s.kind, 0.0) + s.seconds
        return out


@dataclass(frozen=True)
class RankStats:
    """Per-rank decomposition of one run plus its critical-path footprint."""

    rank: int
    work: float  #: charged work/elapse seconds
    comm: float  #: charged send/recv-setup/probe seconds
    wait: float  #: seconds blocked inside recvs
    tail: float  #: makespan minus the rank's final clock (trailing idle)
    on_path: float  #: seconds this rank contributes to the critical path
    slack: float  #: min node slack — how much it can slow without cost

    @property
    def idle(self) -> float:
        return self.wait + self.tail


@dataclass(frozen=True)
class Segment:
    """A (phase, rank, kind) slice of the trace's absolute virtual timeline."""

    phase: str
    rank: int | None  #: None for framework (un-ranked) time
    kind: str  #: "work" | "comm" | "idle"
    t0: float
    t1: float

    @property
    def seconds(self) -> float:
        return self.t1 - self.t0


@dataclass
class Superstep:
    """One bulk-synchronous superstep recorded by a :class:`CostLedger`."""

    phase: str
    cycle: int | None
    t0: float
    t1: float
    work: list[float]  #: per-rank charged work seconds
    comm: list[float]  #: per-rank charged communication seconds
    sync: float  #: dissemination-barrier seconds
    bottleneck: int  #: rank with the largest work+comm


@dataclass
class TraceAnalysis:
    """Whole-trace causal attribution produced by :func:`analyze`."""

    makespan: float
    runs: list[CausalRun]
    paths: dict[int, CriticalPath]  #: run id -> its critical path
    stats: dict[int, list[RankStats]]  #: run id -> per-rank stats
    supersteps: list[Superstep]
    segments: list[Segment]  #: covers [0, makespan] in time order
    by_phase_kind: dict[tuple[str, str], float]
    stragglers: dict[int | None, list[tuple[int, float]]] = field(
        default_factory=dict
    )  #: cycle -> [(rank, on-path seconds) ...], worst first
    clock: str = "virtual"  #: which clock this analysis ran on

    def by_kind(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for (_, kind), sec in self.by_phase_kind.items():
            out[kind] = out.get(kind, 0.0) + sec
        return out


@dataclass
class TraceDiff:
    """Per-(phase, kind) comparison of two analyses (see :func:`diff`)."""

    makespan_a: float
    makespan_b: float
    #: (phase, kind, seconds_a, seconds_b, delta) sorted by |delta| desc.
    rows: list[tuple[str, str, float, float, float]]

    @property
    def delta(self) -> float:
        return self.makespan_b - self.makespan_a


# --- building runs -----------------------------------------------------------


def run_from_result(result, run_id: int = 0, base: float = 0.0,
                    cycle: int | None = None,
                    phase: str | None = None) -> CausalRun:
    """Wrap a traced :class:`~repro.parallel.runtime.RunResult`."""
    if result.nodes is None:
        raise ValueError(
            "RunResult has no causal record; run the VirtualMachine with "
            "trace=True or a tracer"
        )
    return CausalRun(
        id=run_id,
        base=base,
        nranks=len(result.clocks),
        makespan=result.makespan,
        nodes=list(result.nodes),
        msgs=list(result.msgs),
        cycle=cycle,
        phase=phase,
    )


def runs_from_tracer(tracer, clock: str = "virtual") -> list[CausalRun]:
    """All VM runs recorded in a tracer, via its ``vm.run`` marker events.

    ``clock`` selects which runs: ``"virtual"`` (the default — modelled
    runs, including every run of traces that predate measured tracing)
    or ``"wall"`` (measured runs from the real-core backends).  The two
    kinds never mix in one list: wall bases are raw ``perf_counter``
    epochs and would corrupt virtual-timeline placement.
    """
    nodes_by_run: dict[int, list[CausalNode]] = {}
    msgs_by_run: dict[int, list[CausalMsg]] = {}
    for n in getattr(tracer, "causal_nodes", ()):
        nodes_by_run.setdefault(n.run, []).append(n)
    for m in getattr(tracer, "causal_msgs", ()):
        msgs_by_run.setdefault(m.run, []).append(m)
    runs = []
    for ev in tracer.events:
        if ev.name != "vm.run":
            continue
        if ev.attrs.get("clock", "virtual") != clock:
            continue
        rid = ev.attrs["run"]
        phase = None
        if ev.span is not None and 0 <= ev.span < len(tracer.spans):
            phase = tracer.spans[ev.span].name
        runs.append(
            CausalRun(
                id=rid,
                base=ev.attrs.get("base", ev.v_time),
                nranks=ev.attrs["nranks"],
                makespan=ev.attrs["makespan"],
                nodes=sorted(nodes_by_run.get(rid, []), key=lambda n: n.id),
                msgs=sorted(msgs_by_run.get(rid, []), key=lambda m: m.id),
                cycle=ev.attrs.get("cycle"),
                phase=phase,
                clock=clock,
                rank_makespan=ev.attrs.get("rank_makespan"),
                skew=ev.attrs.get("skew", 0.0),
            )
        )
    runs.sort(key=lambda r: r.id)
    return runs


def _predecessors(nodes: list[CausalNode]) -> dict[int, CausalNode | None]:
    """Program-order predecessor per node id (nodes in id order per rank)."""
    prev: dict[int, CausalNode | None] = {}
    last: dict[int, CausalNode] = {}
    for n in sorted(nodes, key=lambda n: n.id):
        prev[n.id] = last.get(n.rank)
        last[n.rank] = n
    return prev


# --- critical path and slack -------------------------------------------------


def critical_path(run: CausalRun) -> CriticalPath:
    """Walk the tight chain backward from the sink; see the module docstring.

    The returned path's :attr:`~CriticalPath.length` is ``sink.t_end``
    itself, so it matches the run's makespan bit-for-bit; the per-step
    ``seconds`` tile ``[0, length]`` exactly in real arithmetic (message
    crossings contribute zero — the wait they hide is the sender's time).
    """
    if not run.nodes:
        return CriticalPath(run=run, steps=[], length=0.0)
    by_id = {n.id: n for n in run.nodes}
    msgs = {m.id: m for m in run.msgs}
    prev = _predecessors(run.nodes)
    sink = max(run.nodes, key=lambda n: (n.t_end, n.id))
    steps: list[PathStep] = []
    n: CausalNode | None = sink
    while n is not None:
        if n.kind == "recv" and n.wait > 0.0 and n.msg is not None:
            # arrival dominated: t_end == send.t_end exactly — cross over
            steps.append(PathStep(node=n, kind="comm", seconds=0.0))
            n = by_id[msgs[n.msg].send_node]
        else:
            steps.append(
                PathStep(node=n, kind=KIND_OF[n.kind],
                         seconds=n.t_end - n.t_start)
            )
            n = prev[n.id]
    steps.reverse()
    return CriticalPath(run=run, steps=steps, length=sink.t_end)


def node_slack(run: CausalRun) -> dict[int, float]:
    """Latest-finish slack per node id (0.0 for the sink, always).

    Propagating constraints in decreasing id order visits every successor
    before its predecessors (all DAG edges go low id -> high id):
    a program-order successor needs its busy seconds after this node ends;
    a waited-on recv needs the send finished by its own latest finish; a
    probe hit needs the message to have *arrived* before the probe began.
    """
    if not run.nodes:
        return {}
    makespan = max(n.t_end for n in run.nodes)
    prev = _predecessors(run.nodes)
    msgs = {m.id: m for m in run.msgs}
    latest = {n.id: makespan for n in run.nodes}
    for n in sorted(run.nodes, key=lambda n: n.id, reverse=True):
        p = prev[n.id]
        if p is not None:
            latest[p.id] = min(latest[p.id], latest[n.id] - n.local)
        if n.msg is not None and n.kind in ("recv", "probe"):
            s = msgs[n.msg].send_node
            if n.kind == "recv":
                latest[s] = min(latest[s], latest[n.id])
            else:
                latest[s] = min(latest[s], latest[n.id] - n.local)
    return {n.id: latest[n.id] - n.t_end for n in run.nodes}


def rank_stats(run: CausalRun,
               path: CriticalPath | None = None) -> list[RankStats]:
    """Per-rank work/comm/idle/slack decomposition of one run.

    Nodes on the critical path have zero slack *by definition*; they are
    pinned to exactly ``0.0`` here because the backward DP in
    :func:`node_slack` re-derives their latest-finish times through a
    chain of float subtractions that need not cancel to the last bit.
    """
    path = path if path is not None else critical_path(run)
    slack = node_slack(run)
    for s in path.steps:
        slack[s.node.id] = 0.0
    makespan = run.makespan
    work = [0.0] * run.nranks
    comm = [0.0] * run.nranks
    wait = [0.0] * run.nranks
    clock = [0.0] * run.nranks
    min_slack = [makespan] * run.nranks
    on_path = [0.0] * run.nranks
    for n in run.nodes:
        if KIND_OF[n.kind] == "work":
            work[n.rank] += n.local
        else:
            comm[n.rank] += n.local
        wait[n.rank] += n.wait
        clock[n.rank] = max(clock[n.rank], n.t_end)
        min_slack[n.rank] = min(min_slack[n.rank], slack[n.id])
    for s in path.steps:
        on_path[s.node.rank] += s.seconds
    return [
        RankStats(
            rank=r,
            work=work[r],
            comm=comm[r],
            wait=wait[r],
            tail=makespan - clock[r],
            on_path=on_path[r],
            slack=min_slack[r],
        )
        for r in range(run.nranks)
    ]


def chain_of(nodes: list[CausalNode], msgs: list[CausalMsg],
             start: CausalNode, limit: int = 8) -> list[CausalNode]:
    """Backward tight chain from ``start``, oldest first, capped at ``limit``.

    Shared with :class:`~repro.parallel.runtime.DeadlockError` diagnostics:
    the chain from a blocked rank's last completed node shows what it was
    doing — and which senders it depended on — when progress stopped.
    """
    by_id = {n.id: n for n in nodes}
    by_msg = {m.id: m for m in msgs}
    prev = _predecessors(nodes)
    chain = [start]
    n: CausalNode | None = start
    while len(chain) < limit:
        if n.kind == "recv" and n.wait > 0.0 and n.msg is not None:
            n = by_id[by_msg[n.msg].send_node]
        else:
            n = prev[n.id]
        if n is None:
            break
        chain.append(n)
    chain.reverse()
    return chain


def format_chain(chain: list[CausalNode],
                 msgs: list[CausalMsg] | None = None) -> str:
    """One-line rendering of a causal chain, oldest -> newest."""
    by_msg = {m.id: m for m in msgs} if msgs else {}
    parts = []
    for n in chain:
        label = n.kind
        m = by_msg.get(n.msg) if n.msg is not None else None
        if m is not None:
            if n.kind == "send":
                label = f"send->{m.dst}(tag={m.tag})"
            else:
                label = f"{n.kind}<-{m.src}(tag={m.tag})"
        parts.append(f"r{n.rank}:{label}@{n.t_end:.6g}")
    return " -> ".join(parts)


# --- whole-trace attribution -------------------------------------------------


def _span_name(tracer, span_index: int | None) -> str | None:
    if span_index is not None and 0 <= span_index < len(tracer.spans):
        return tracer.spans[span_index].name
    return None


def _supersteps_from_tracer(tracer) -> list[Superstep]:
    steps = []
    for ev in tracer.events:
        if ev.name != "ledger.superstep":
            continue
        t0 = ev.v_time + ev.attrs["start"]
        work = list(ev.attrs["work"])
        comm = list(ev.attrs["comm"])
        busy = [w + c for w, c in zip(work, comm)]
        steps.append(
            Superstep(
                phase=_span_name(tracer, ev.span) or "(untracked)",
                cycle=ev.attrs.get("cycle"),
                t0=t0,
                t1=t0 + ev.attrs["duration"],
                work=work,
                comm=comm,
                sync=ev.attrs.get("sync", 0.0),
                bottleneck=max(range(len(busy)), key=lambda r: busy[r])
                if busy else 0,
            )
        )
    steps.sort(key=lambda s: s.t0)
    return steps


def _covering_phase(tracer, t: float, clock: str = "virtual",
                    epoch: float = 0.0) -> str:
    """Name of the deepest closed span whose interval covers ``t``.

    On the virtual clock, span virtual intervals are compared directly;
    on the wall clock, span wall intervals are re-zeroed on ``epoch``
    (the earliest measured timestamp of the trace) first.
    """
    best = None
    for s in tracer.spans:
        if s.open or s.v_end is None:
            continue
        if clock == "wall":
            t0, t1 = s.wall_start - epoch, s.wall_end - epoch
        else:
            t0, t1 = s.v_start, s.v_end
        if t0 <= t <= t1:
            if best is None or s.depth > best.depth:
                best = s
    return best.name if best is not None else "(untracked)"


def _merge_push(segments: list[Segment], seg: Segment) -> None:
    """Append, merging with the previous segment when it continues it."""
    if (
        segments
        and segments[-1].phase == seg.phase
        and segments[-1].rank == seg.rank
        and segments[-1].kind == seg.kind
        and segments[-1].t1 == seg.t0
    ):
        segments[-1] = Segment(seg.phase, seg.rank, seg.kind,
                               segments[-1].t0, seg.t1)
    else:
        segments.append(seg)


def analyze(tracer, clock: str = "virtual") -> TraceAnalysis:
    """Attribute a whole trace's time to (phase, rank, kind).

    On the default virtual clock, VM runs contribute their critical-path
    steps (exact); ledger supersteps contribute their bottleneck rank's
    work/comm split; any virtual time not covered by either is framework
    time, attributed to the deepest enclosing span.  The segment list
    covers ``[0, makespan]`` in time order with no overlaps.

    With ``clock="wall"`` the same attribution runs over the *measured*
    runs recorded by the real-core backends: run bases and span
    intervals are host wall seconds re-zeroed on the trace's earliest
    measured timestamp, and ledger supersteps (virtual-only records) are
    excluded.  The virtual analysis of a trace is byte-identical whether
    or not measured runs are present.
    """
    wall = clock == "wall"
    runs = runs_from_tracer(tracer, clock=clock)
    paths = {r.id: critical_path(r) for r in runs}
    stats = {r.id: rank_stats(r, paths[r.id]) for r in runs}
    supersteps = [] if wall else _supersteps_from_tracer(tracer)

    epoch = 0.0
    if wall:
        epoch = min(
            [r.base for r in runs]
            + [s.wall_start for s in tracer.spans if not s.open],
            default=0.0,
        )

    covered: list[Segment] = []
    for run in runs:
        phase = run.phase or "vm"
        base = run.base - epoch if wall else run.base
        for s in paths[run.id].steps:
            if s.seconds <= 0.0:
                continue
            _merge_push(
                covered,
                Segment(phase, s.node.rank, s.kind,
                        base + s.node.t_start, base + s.node.t_end),
            )
    for ss in supersteps:
        b = ss.bottleneck
        split = ss.t0 + (ss.work[b] if ss.work else 0.0)
        split = min(split, ss.t1)
        if split > ss.t0:
            covered.append(Segment(ss.phase, b, "work", ss.t0, split))
        if ss.t1 > split:
            covered.append(Segment(ss.phase, b, "comm", split, ss.t1))

    if wall:
        span_end = max(
            (s.wall_end - epoch for s in tracer.spans
             if not s.open and s.wall_end is not None),
            default=0.0,
        )
    else:
        span_end = max(
            (s.v_end for s in tracer.spans
             if not s.open and s.v_end is not None),
            default=0.0,
        )
    makespan = max([span_end] + [seg.t1 for seg in covered])

    covered.sort(key=lambda seg: (seg.t0, seg.t1))
    segments: list[Segment] = []
    cursor = 0.0
    for seg in covered:
        if seg.t0 > cursor:
            phase = _covering_phase(tracer, (cursor + seg.t0) / 2.0,
                                    clock=clock, epoch=epoch)
            _merge_push(segments, Segment(phase, None, "work", cursor, seg.t0))
        if seg.t1 <= cursor:
            continue  # fully shadowed by an earlier segment
        t0 = max(seg.t0, cursor)
        _merge_push(segments, Segment(seg.phase, seg.rank, seg.kind, t0, seg.t1))
        cursor = seg.t1
    if makespan > cursor:
        phase = _covering_phase(tracer, (cursor + makespan) / 2.0,
                                clock=clock, epoch=epoch)
        _merge_push(segments, Segment(phase, None, "work", cursor, makespan))

    by_phase_kind: dict[tuple[str, str], float] = {}
    for seg in segments:
        key = (seg.phase, seg.kind)
        by_phase_kind[key] = by_phase_kind.get(key, 0.0) + seg.seconds

    stragglers: dict[int | None, dict[int, float]] = {}
    for run in runs:
        per = stragglers.setdefault(run.cycle, {})
        for st in stats[run.id]:
            if st.on_path > 0.0:
                per[st.rank] = per.get(st.rank, 0.0) + st.on_path
    for ss in supersteps:
        per = stragglers.setdefault(ss.cycle, {})
        b = ss.bottleneck
        busy = (ss.work[b] if ss.work else 0.0) + (ss.comm[b] if ss.comm else 0.0)
        if busy > 0.0:
            per[b] = per.get(b, 0.0) + busy
    ranked = {
        cyc: sorted(per.items(), key=lambda kv: (-kv[1], kv[0]))
        for cyc, per in stragglers.items()
    }

    return TraceAnalysis(
        makespan=makespan,
        runs=runs,
        paths=paths,
        stats=stats,
        supersteps=supersteps,
        segments=segments,
        by_phase_kind=by_phase_kind,
        stragglers=ranked,
        clock=clock,
    )


def verify_makespans(tracer) -> int:
    """Check the causal record against the recorded run results.

    For every *virtual* VM run in the trace, assert that the
    critical-path length equals the run's makespan *bit-for-bit* and
    that at least one rank has zero slack.  For every *measured* run
    (``clock="wall"``), the path length must still equal the merged
    makespan exactly, and must additionally match the measured per-rank
    makespan to within the recorded clock-skew bound (barrier-release
    spread plus twice the worst handshake uncertainty).  Returns the
    number of runs verified.
    """
    runs = runs_from_tracer(tracer) + runs_from_tracer(tracer, clock="wall")
    for run in runs:
        path = critical_path(run)
        if path.length != run.makespan:
            raise AssertionError(
                f"run {run.id} ({run.phase}): critical-path length "
                f"{path.length!r} != makespan {run.makespan!r}"
            )
        if run.clock == "wall" and run.rank_makespan is not None:
            bound = max(run.skew, 1e-9)
            if abs(path.length - run.rank_makespan) > bound:
                raise AssertionError(
                    f"run {run.id} ({run.phase}): wall critical-path "
                    f"length {path.length!r} is further than the skew "
                    f"bound {bound!r} from the measured rank makespan "
                    f"{run.rank_makespan!r}"
                )
        if run.nodes:
            stats = rank_stats(run, path)
            if not any(st.slack == 0.0 for st in stats):
                raise AssertionError(
                    f"run {run.id} ({run.phase}): no rank has zero slack"
                )
    return len(runs)


# --- comparing two analyses --------------------------------------------------


def diff(a: TraceAnalysis, b: TraceAnalysis) -> TraceDiff:
    """Per-(phase, kind) makespan attribution delta between two traces."""
    keys = sorted(set(a.by_phase_kind) | set(b.by_phase_kind))
    rows = [
        (
            phase,
            kind,
            a.by_phase_kind.get((phase, kind), 0.0),
            b.by_phase_kind.get((phase, kind), 0.0),
            b.by_phase_kind.get((phase, kind), 0.0)
            - a.by_phase_kind.get((phase, kind), 0.0),
        )
        for phase, kind in keys
    ]
    rows.sort(key=lambda row: (-abs(row[4]), row[0], row[1]))
    return TraceDiff(makespan_a=a.makespan, makespan_b=b.makespan, rows=rows)


# --- ASCII rendering ---------------------------------------------------------


def _fmt_s(v: float) -> str:
    return f"{v:.6f}"


def format_critical_path(analysis: TraceAnalysis, top: int = 10) -> str:
    """ASCII breakdown: (phase, kind) attribution, top segments, stragglers."""
    unit = "wall" if analysis.clock == "wall" else "virtual"
    lines = [
        f"makespan: {_fmt_s(analysis.makespan)} {unit} seconds "
        f"({len(analysis.runs)} vm runs, "
        f"{len(analysis.supersteps)} ledger supersteps)",
    ]
    kinds = analysis.by_kind()
    if kinds:
        total = sum(kinds.values()) or 1.0
        lines.append(
            "by kind: "
            + "  ".join(
                f"{k}={_fmt_s(v)}s ({100.0 * v / total:.1f}%)"
                for k, v in sorted(kinds.items(), key=lambda kv: -kv[1])
            )
        )
    lines.append("")
    lines.append("critical-path attribution by (phase, kind):")
    lines.append(f"  {'phase':<18s} {'kind':<5s} {'seconds':>12s} {'share':>7s}")
    total = analysis.makespan or 1.0
    for (phase, kind), sec in sorted(
        analysis.by_phase_kind.items(), key=lambda kv: -kv[1]
    ):
        lines.append(
            f"  {phase:<18s} {kind:<5s} {_fmt_s(sec):>12s} "
            f"{100.0 * sec / total:6.1f}%"
        )
    ranked = sorted(analysis.segments, key=lambda s: -s.seconds)[:top]
    if ranked:
        lines.append("")
        lines.append(f"top {len(ranked)} path segments:")
        lines.append(
            f"  {'t0':>12s} .. {'t1':>12s} {'seconds':>12s}  "
            f"{'phase':<18s} {'rank':>4s} kind"
        )
        for seg in ranked:
            rank = "-" if seg.rank is None else str(seg.rank)
            lines.append(
                f"  {_fmt_s(seg.t0):>12s} .. {_fmt_s(seg.t1):>12s} "
                f"{_fmt_s(seg.seconds):>12s}  {seg.phase:<18s} {rank:>4s} "
                f"{seg.kind}"
            )
    cycles = [c for c in analysis.stragglers if c is not None]
    if cycles:
        lines.append("")
        lines.append("stragglers per cycle (on-path seconds):")
        for cyc in sorted(cycles):
            entries = analysis.stragglers[cyc][:5]
            listing = ", ".join(
                f"rank {r} ({_fmt_s(sec)}s)" for r, sec in entries
            )
            lines.append(f"  cycle {cyc}: {listing}")
    return "\n".join(lines)


def format_diff(d: TraceDiff, label_a: str = "A", label_b: str = "B",
                top: int = 15) -> str:
    """ASCII rendering of :func:`diff`, biggest movers first."""
    lines = [
        f"makespan {label_a}: {_fmt_s(d.makespan_a)}s   "
        f"{label_b}: {_fmt_s(d.makespan_b)}s   "
        f"delta: {d.delta:+.6f}s "
        f"({100.0 * d.delta / d.makespan_a:+.1f}%)"
        if d.makespan_a
        else f"makespan {label_a}: {_fmt_s(d.makespan_a)}s   "
        f"{label_b}: {_fmt_s(d.makespan_b)}s",
        "",
        f"  {'phase':<18s} {'kind':<5s} {label_a:>12s} {label_b:>12s} "
        f"{'delta':>12s}",
    ]
    for phase, kind, sa, sb, delta in d.rows[:top]:
        lines.append(
            f"  {phase:<18s} {kind:<5s} {_fmt_s(sa):>12s} {_fmt_s(sb):>12s} "
            f"{delta:>+12.6f}"
        )
    rest = d.rows[top:]
    if rest:
        resid = sum(row[4] for row in rest)
        lines.append(f"  ({len(rest)} smaller rows, net {resid:+.6f}s)")
    return "\n".join(lines)
