"""Per-rank wall-clock event recording and clock alignment.

The real-core backends (``multiprocessing`` / ``shm`` / ``mpi4py``) run
each rank in its own OS process with its own ``time.perf_counter()``
stream.  This module supplies the three pieces that turn those streams
into the same causal-trace model the virtual machine records
(:mod:`repro.obs.causal`):

:class:`WallRecorder`
    A columnar event log a rank driver appends to while executing the
    rank program — flat parallel lists (kind code, start, end, wait,
    message id), à la the VM scheduler's ``_VMRecord``, so the per-op
    cost is a handful of list appends.  The real Python work between two
    yielded ops is synthesized as a ``work`` node filling the gap, so a
    rank's nodes tile its measured interval exactly like virtual nodes
    tile ``[0, clock]``.

:func:`estimate_offset` / :func:`serve_clock_probes`
    NTP-style clock handshake over a ``multiprocessing.Pipe`` (or any
    object with ``send``/``recv``/``poll``): the parent timestamps a
    probe round trip, the child answers with its own clock, and the
    offset estimate ``t_child - (t_send + t_recv) / 2`` from the
    minimum-RTT round is accurate to half that round trip (recorded as
    the per-rank ``skew``).  On Linux ``perf_counter`` is the system-wide
    ``CLOCK_MONOTONIC``, so offsets come out near zero with a
    microsecond-scale bound — but the estimate never assumes that.

:func:`merge_streams`
    Aligns every rank's columns onto one timeline (subtract the rank
    offset, then re-zero on the earliest aligned op start), renumbers the
    nodes with a priority Kahn topological sort so the causal invariant
    every consumer relies on — all DAG edges go from a lower node id to a
    higher one — holds despite cross-rank interleaving, and materializes
    :class:`~repro.obs.causal.CausalNode`/:class:`~repro.obs.causal.CausalMsg`
    lists plus the makespan bookkeeping a ``vm.run`` marker needs.

The resulting runs carry ``clock="wall"`` and a recorded ``skew`` bound:
the wall critical-path length and the measured per-rank makespan agree to
within the recorder start spread plus twice the worst offset uncertainty
(:func:`repro.obs.causal.verify_makespans` checks exactly that).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from heapq import heappop, heappush

from .causal import CausalMsg, CausalNode

__all__ = [
    "SYNC_ROUNDS",
    "ClockRecord",
    "MergedRun",
    "WallRecorder",
    "estimate_offset",
    "estimate_offsets",
    "format_clock_skew",
    "merge_streams",
    "record_measured_run",
    "serve_clock_probes",
]

#: Handshake probe rounds per rank; the minimum-RTT round wins.
SYNC_ROUNDS = 5

#: Node kind codes in the recorder columns (``work`` fills yield gaps).
_KIND_NAMES = ("work", "send", "recv", "probe")
WORK, SEND, RECV, PROBE = range(4)


@dataclass(frozen=True)
class ClockRecord:
    """How one rank's clock was aligned for one measured run."""

    run: int  #: id of the measured run (same space as virtual run ids)
    rank: int
    offset: float  #: seconds subtracted from the rank's perf_counter stream
    skew: float  #: offset uncertainty: half the best handshake round trip

    def __post_init__(self):
        if self.skew < 0:
            raise ValueError(f"negative clock skew {self.skew}")


class WallRecorder:
    """Columnar per-rank event log on the local ``perf_counter`` clock.

    ``note_op`` appends one operation interval; any gap since the
    previous recorded end becomes a ``work`` node first (that gap *is*
    the real Python work the program did between yields).  All columns
    are plain lists of numbers, so the whole log pickles cheaply through
    the backend's result queue.
    """

    __slots__ = ("t0", "kinds", "starts", "ends", "waits", "msgs",
                 "sends", "spills", "_last")

    def __init__(self):
        self.t0 = 0.0  #: clock start (set by :meth:`start`)
        self.kinds: list[int] = []
        self.starts: list[float] = []
        self.ends: list[float] = []
        self.waits: list[float] = []
        self.msgs: list[int] = []  #: message id touched, -1 for none
        #: per send, ``(msg_id, dest, tag, nwords)`` in send order
        self.sends: list[tuple[int, int, int, int]] = []
        #: ``(t, msg_id)`` for each send whose payload spilled to pickle
        self.spills: list[tuple[float, int]] = []
        self._last = 0.0

    def start(self, t: float) -> None:
        self.t0 = t
        self._last = t

    def note_op(self, code: int, t_start: float, t_end: float,
                wait: float = 0.0, msg: int = -1) -> None:
        last = self._last
        if t_start > last:
            self.kinds.append(WORK)
            self.starts.append(last)
            self.ends.append(t_start)
            self.waits.append(0.0)
            self.msgs.append(-1)
        self.kinds.append(code)
        self.starts.append(t_start)
        self.ends.append(t_end)
        self.waits.append(wait)
        self.msgs.append(msg)
        self._last = t_end

    def note_send(self, msg_id: int, dest: int, tag: int, nwords: int,
                  t_start: float, t_end: float) -> None:
        self.sends.append((msg_id, dest, tag, nwords))
        self.note_op(SEND, t_start, t_end, 0.0, msg_id)

    def note_spill(self, t: float, msg_id: int) -> None:
        self.spills.append((t, msg_id))

    def finish(self, t_end: float) -> None:
        """Close the log: trailing work after the last op, if any."""
        if t_end > self._last:
            self.note_op(WORK, self._last, t_end)

    def columns(self) -> dict:
        """Plain-data form for shipping over the result queue."""
        return {
            "t0": self.t0,
            "kinds": self.kinds,
            "starts": self.starts,
            "ends": self.ends,
            "waits": self.waits,
            "msgs": self.msgs,
            "sends": self.sends,
            "spills": self.spills,
        }


# --- clock handshake ---------------------------------------------------------


def serve_clock_probes(conn, rounds: int = SYNC_ROUNDS,
                       timeout: float = 60.0) -> None:
    """Child side: answer ``rounds`` timestamp probes on ``conn``.

    Each probe is answered with the local ``perf_counter()`` at receipt;
    delays on the reply leg only widen the measured RTT (and therefore
    the recorded skew bound), never bias the offset silently.
    """
    for _ in range(rounds):
        if not conn.poll(timeout):
            raise RuntimeError("clock handshake timed out waiting for probe")
        conn.recv()
        conn.send(time.perf_counter())


def estimate_offset(conn, rounds: int = SYNC_ROUNDS,
                    timeout: float = 60.0) -> tuple[float, float]:
    """Parent side: NTP-style offset of the peer clock relative to ours.

    Returns ``(offset, skew)``: subtracting ``offset`` from a peer
    timestamp maps it onto this process's clock, correct to within
    ``skew`` (half the minimum observed round trip) under the symmetric-
    delay assumption.
    """
    best_rtt = float("inf")
    best_offset = 0.0
    for _ in range(rounds):
        t_send = time.perf_counter()
        conn.send(0)
        if not conn.poll(timeout):
            raise RuntimeError("clock handshake timed out waiting for reply")
        t_peer = conn.recv()
        t_recv = time.perf_counter()
        rtt = t_recv - t_send
        if rtt < best_rtt:
            best_rtt = rtt
            best_offset = t_peer - (t_send + t_recv) / 2.0
    return best_offset, best_rtt / 2.0


def estimate_offsets(conns: dict, rounds: int = SYNC_ROUNDS,
                     timeout: float = 60.0) -> tuple[dict, dict]:
    """Handshake every peer in ``conns`` with pipelined probe rounds.

    Equivalent to :func:`estimate_offset` per connection, but each round
    sends all probes before collecting any reply, so one slow-booting
    peer's wait overlaps the others' instead of serializing (the
    dominant startup cost when the parent has just forked every rank).
    Servicing other peers between a probe's send and its reply only
    inflates that round's measured RTT — and the minimum-RTT round
    still wins — so congestion widens the skew bound rather than
    biasing the offset.  Returns ``(offsets, skews)`` keyed like
    ``conns``.
    """
    best = {r: (float("inf"), 0.0) for r in conns}
    for _ in range(rounds):
        t_send = {}
        for r, conn in conns.items():
            t_send[r] = time.perf_counter()
            conn.send(0)
        for r, conn in conns.items():
            if not conn.poll(timeout):
                raise RuntimeError(
                    "clock handshake timed out waiting for reply"
                )
            t_peer = conn.recv()
            t_recv = time.perf_counter()
            rtt = t_recv - t_send[r]
            if rtt < best[r][0]:
                best[r] = (rtt, t_peer - (t_send[r] + t_recv) / 2.0)
    offsets = {r: off for r, (_, off) in best.items()}
    skews = {r: rtt / 2.0 for r, (rtt, _) in best.items()}
    return offsets, skews


# --- merging -----------------------------------------------------------------


@dataclass
class MergedRun:
    """One measured run's aligned causal record (run ids stamped 0)."""

    nodes: list[CausalNode]
    msgs: list[CausalMsg]
    makespan: float  #: max aligned node end (run-local time zero = first op)
    rank_makespan: float  #: max per-rank duration on its *own* clock
    start_spread: float  #: spread of aligned clock starts (boot stagger)
    epoch: float  #: parent-clock perf_counter of the merged time zero
    spills: list[tuple[float, int, int]]  #: aligned ``(t, rank, msg_id)``


def merge_streams(streams: dict[int, dict],
                  offsets: dict[int, float]) -> MergedRun:
    """Merge per-rank recorder columns onto one aligned timeline.

    ``streams[r]`` is rank *r*'s :meth:`WallRecorder.columns` dict and
    ``offsets[r]`` the handshake offset of its clock.  Node ids are
    assigned by a Kahn topological sort over program order and message
    edges, keyed by aligned end time, so every edge goes low id -> high
    id (the invariant :func:`repro.obs.causal.node_slack` and the
    backward critical-path walk rely on).  Real-time causality makes the
    graph a DAG regardless of clock error; the time key only keeps ids
    near time order for readable traces.
    """
    ranks = sorted(streams)
    aligned_t0 = {r: streams[r]["t0"] - offsets[r] for r in ranks}
    epoch = min(aligned_t0.values(), default=0.0)
    start_spread = (
        max(aligned_t0.values()) - min(aligned_t0.values())
        if aligned_t0 else 0.0
    )

    # provisional nodes keyed (rank, local index); consumers of each msg id
    consumer: dict[int, tuple[int, int]] = {}
    counts = {}
    for r in ranks:
        cols = streams[r]
        counts[r] = len(cols["kinds"])
        for i, (code, mid) in enumerate(zip(cols["kinds"], cols["msgs"])):
            if mid >= 0 and code in (RECV, PROBE):
                consumer[mid] = (r, i)

    # Kahn: indegree = program-order predecessor + send of any consumed msg
    indeg: dict[tuple[int, int], int] = {}
    out_edges: dict[tuple[int, int], list[tuple[int, int]]] = {}
    send_node_of: dict[int, tuple[int, int]] = {}
    for r in ranks:
        cols = streams[r]
        for i in range(counts[r]):
            key = (r, i)
            indeg[key] = 1 if i > 0 else 0
            if i > 0:
                out_edges.setdefault((r, i - 1), []).append(key)
            if cols["kinds"][i] == SEND:
                send_node_of[cols["msgs"][i]] = key
    for mid, rcv in consumer.items():
        snd = send_node_of.get(mid)
        if snd is not None:
            indeg[rcv] += 1
            out_edges.setdefault(snd, []).append(rcv)

    def aligned_end(r: int, i: int) -> float:
        return streams[r]["ends"][i] - offsets[r] - epoch

    heap: list[tuple[float, int, int]] = []
    for r in ranks:
        if counts[r]:
            heappush(heap, (aligned_end(r, 0), r, 0))
    order: dict[tuple[int, int], int] = {}
    next_id = 0
    while heap:
        _, r, i = heappop(heap)
        order[(r, i)] = next_id
        next_id += 1
        for (r2, i2) in out_edges.get((r, i), ()):
            indeg[(r2, i2)] -= 1
            if indeg[(r2, i2)] == 0:
                heappush(heap, (aligned_end(r2, i2), r2, i2))
    if next_id != sum(counts.values()):  # pragma: no cover - defensive
        raise AssertionError(
            "measured event streams contain a causal cycle "
            f"({next_id} of {sum(counts.values())} nodes ordered)"
        )

    nodes: list[CausalNode] = [None] * next_id  # type: ignore[list-item]
    makespan = 0.0
    rank_makespan = 0.0
    for r in ranks:
        cols = streams[r]
        off = offsets[r] + epoch
        for i in range(counts[r]):
            t_start = cols["starts"][i] - off
            t_end = cols["ends"][i] - off
            if t_end < t_start:  # pragma: no cover - monotonic clocks
                t_end = t_start
            wait = min(max(cols["waits"][i], 0.0), t_end - t_start)
            mid = cols["msgs"][i]
            nodes[order[(r, i)]] = CausalNode(
                run=0,
                id=order[(r, i)],
                rank=r,
                kind=_KIND_NAMES[cols["kinds"][i]],
                t_start=t_start,
                t_end=t_end,
                wait=wait,
                msg=mid if mid >= 0 else None,
            )
            if t_end > makespan:
                makespan = t_end
        if counts[r]:
            dur = cols["ends"][-1] - cols["t0"]
            if dur > rank_makespan:
                rank_makespan = dur

    msgs: list[CausalMsg] = []
    for r in ranks:
        for mid, dest, tag, nwords in streams[r]["sends"]:
            rcv = consumer.get(mid)
            msgs.append(CausalMsg(
                run=0,
                id=mid,
                src=r,
                dst=dest,
                tag=tag,
                nwords=nwords,
                send_node=order[send_node_of[mid]],
                recv_node=order[rcv] if rcv is not None else None,
            ))
    msgs.sort(key=lambda m: m.id)

    spills = sorted(
        (t - offsets[r] - epoch, r, mid)
        for r in ranks
        for (t, mid) in streams[r]["spills"]
    )
    return MergedRun(
        nodes=nodes,
        msgs=msgs,
        makespan=makespan,
        rank_makespan=rank_makespan,
        start_spread=start_spread,
        epoch=epoch,
        spills=spills,
    )


def record_measured_run(tracer, streams, offsets, skews, *, nranks,
                        backend, waited, msgs_sent, msgs_recv,
                        words_sent, words_recv):
    """Merge per-rank streams and write the measured run into ``tracer``.

    The shared tail of every measured backend: :func:`merge_streams`,
    stamp a fresh run id, extend the tracer's causal record, emit the
    ``vm.run`` marker with ``clock="wall"`` (its ``skew`` attribute is
    the alignment error bound — recorder start spread plus twice the
    worst per-rank handshake uncertainty), append one
    :class:`ClockRecord` per rank, emit ``transport.spill`` events, and
    mirror the VM's per-rank traffic series with a ``clock="wall"``
    label.  Returns the merged ``(nodes, msgs)`` lists — shared with the
    tracer — so the backend's ``RunResult`` can carry them too.
    """
    merged = merge_streams(streams, offsets)
    run_id = tracer.next_causal_run()
    for n in merged.nodes:
        n.run = run_id
    for m in merged.msgs:
        m.run = run_id
    tracer.causal_nodes.extend(merged.nodes)
    tracer.causal_msgs.extend(merged.msgs)
    skew_bound = (
        merged.start_spread
        + 2.0 * max(skews.values(), default=0.0)
        + 1e-9
    )
    tracer.event(
        "vm.run",
        run=run_id,
        clock="wall",
        base=merged.epoch,
        makespan=merged.makespan,
        rank_makespan=merged.rank_makespan,
        skew=skew_bound,
        nranks=nranks,
        cycle=tracer.cycle,
        nodes=len(merged.nodes),
        msgs=len(merged.msgs),
        backend=backend,
    )
    for r in range(nranks):
        tracer.clock_records.append(ClockRecord(
            run=run_id, rank=r,
            offset=offsets.get(r, 0.0), skew=skews.get(r, 0.0),
        ))
    for t, r, mid in merged.spills:
        tracer.event(
            "transport.spill", rank=r,
            run=run_id, msg=mid, t=t, clock="wall",
        )
    # Mirror the VM's per-rank traffic series in measured form; the
    # clock="wall" label keeps them apart from the modelled samples.
    rank_busy = [0.0] * nranks
    for n in merged.nodes:
        rank_busy[n.rank] += n.t_end - n.t_start - n.wait
    per_rank_series = (
        ("repro.vm.messages_sent", msgs_sent),
        ("repro.vm.messages_recv", msgs_recv),
        ("repro.vm.words_sent", words_sent),
        ("repro.vm.words_recv", words_recv),
        ("repro.vm.busy_seconds", rank_busy),
        ("repro.vm.idle_seconds",
         [merged.makespan - b for b in rank_busy]),
        ("repro.vm.wait_seconds", waited),
    )
    for name, values in per_rank_series:
        for r in range(nranks):
            tracer.metric(
                name, values[r], kind="counter", rank=r, clock="wall",
            )
    return merged.nodes, merged.msgs


def format_clock_skew(tracer) -> str:
    """Phase-by-phase clock-alignment table for a trace's measured runs.

    One row per measured (``clock="wall"``) run: the phase it executed
    under, which backend ran it, the merged makespan, the worst per-rank
    own-clock duration, how far the wall critical path lands from that
    rank makespan, and the alignment bookkeeping — the run's skew bound
    plus the worst per-rank handshake offset and uncertainty from the
    trace's :class:`ClockRecord` rows.  Returns an empty string when the
    trace carries no measured runs.
    """
    from .causal import critical_path, runs_from_tracer

    runs = runs_from_tracer(tracer, clock="wall")
    if not runs:
        return ""
    backends = {
        ev.attrs.get("run"): ev.attrs.get("backend", "?")
        for ev in tracer.events
        if ev.name == "vm.run" and ev.attrs.get("clock") == "wall"
    }
    by_run: dict[int, list] = {}
    for c in getattr(tracer, "clock_records", ()):
        by_run.setdefault(c.run, []).append(c)
    lines = [
        "clock alignment per measured run:",
        f"  {'run':>4s}  {'phase':<16s} {'backend':<10s} "
        f"{'makespan s':>11s} {'rank max s':>11s} {'path-rank s':>12s} "
        f"{'skew bound s':>13s} {'max |offset|':>13s}",
    ]
    for run in runs:
        path = critical_path(run)
        rank_max = run.rank_makespan if run.rank_makespan is not None \
            else path.length
        delta = abs(path.length - rank_max)
        worst_offset = max(
            (abs(c.offset) for c in by_run.get(run.id, ())), default=0.0
        )
        lines.append(
            f"  {run.id:>4d}  {(run.phase or '-'):<16.16s} "
            f"{backends.get(run.id, '?'):<10.10s} "
            f"{run.makespan:>11.6f} {rank_max:>11.6f} {delta:>12.6f} "
            f"{run.skew:>13.6f} {worst_offset:>13.6f}"
        )
    return "\n".join(lines)
