"""Periodic process-resource sampling (``repro.resource.*``).

A run that takes minutes on a real backend — or that blows past its
memory budget at 16k virtual ranks — should explain itself from its
trace.  This module samples the *process* the run executes in: resident
set size, accumulated CPU seconds, and garbage-collector collection
counts, all from the standard library (``/proc`` + :mod:`resource` +
:mod:`gc`; no psutil dependency).

:func:`sample_resources`
    One snapshot of (rss_bytes, cpu_seconds, gc_collections) for the
    current process.

:class:`ResourceSampler`
    A daemon thread sampling every ``interval`` seconds into columnar
    lists (timestamps on ``perf_counter``, relative to :meth:`start`).
    The columns pickle cheaply, so a forked rank ships its rows back to
    the parent alongside its :class:`~repro.obs.wallclock.WallRecorder`
    columns.  An optional ``emit`` callback streams each sample as it is
    taken (the live side channel); emission must never block, so the
    callback is expected to drop on a full queue.

:func:`record_resource_samples`
    Append one rank's rows to ``Tracer.resource_samples`` (serialised as
    ``resource`` records, schema ``repro.obs/v5``) and mirror the peaks
    into labelled ``repro.resource.{peak_rss_bytes,cpu_seconds,
    gc_collections}`` metrics so reports and the run-history store see
    them without re-reading the raw rows.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from dataclasses import dataclass

__all__ = [
    "DEFAULT_INTERVAL",
    "ResourceSample",
    "ResourceSampler",
    "record_resource_samples",
    "resource_peaks",
    "sample_resources",
]

#: Default seconds between samples; coarse enough that a sampler thread
#: costs well under a percent of one core.
DEFAULT_INTERVAL = 0.05

_PAGE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


@dataclass(frozen=True)
class ResourceSample:
    """One resource snapshot of one process (trace record type ``resource``)."""

    rank: int | None  #: rank whose process was sampled, None for the host
    t: float  #: seconds since that process's sampler started
    rss_bytes: float  #: resident set size at the sample
    cpu_seconds: float  #: process CPU time (user+system) at the sample
    gc_collections: int  #: cumulative GC collections across generations


def _rss_bytes() -> float:
    """Current resident set size in bytes (0.0 when unreadable)."""
    try:
        with open("/proc/self/statm", "rb") as fh:
            return int(fh.read().split()[1]) * _PAGE
    except (OSError, ValueError, IndexError):
        pass
    try:  # fallback: peak RSS (ru_maxrss is KiB on Linux, bytes on macOS)
        import resource as _resource

        rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        return float(rss if rss > 1 << 32 else rss * 1024)
    except Exception:
        return 0.0


def _gc_collections() -> int:
    return sum(s["collections"] for s in gc.get_stats())


def sample_resources() -> tuple[float, float, int]:
    """``(rss_bytes, cpu_seconds, gc_collections)`` for this process."""
    return _rss_bytes(), time.process_time(), _gc_collections()


class ResourceSampler:
    """Daemon-thread sampler writing columnar rows for one process.

    ``emit(t, rss, cpu, gcs)`` — when given — is called from the sampler
    thread after each sample; it must be non-blocking (the live side
    channel drops frames on a full queue rather than stalling).
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 rank: int | None = None, emit=None):
        if interval <= 0:
            raise ValueError(f"sampling interval must be > 0, got {interval}")
        self.interval = interval
        self.rank = rank
        self.emit = emit
        self.times: list[float] = []
        self.rss: list[float] = []
        self.cpu: list[float] = []
        self.gcs: list[int] = []
        self._t0 = 0.0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _take(self) -> None:
        t = time.perf_counter() - self._t0
        rss, cpu, gcs = sample_resources()
        self.times.append(t)
        self.rss.append(rss)
        self.cpu.append(cpu)
        self.gcs.append(gcs)
        if self.emit is not None:
            try:
                self.emit(t, rss, cpu, gcs)
            except Exception:
                pass  # telemetry must never take the run down

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._take()

    def start(self) -> "ResourceSampler":
        """Take an immediate first sample and begin periodic sampling."""
        self._t0 = time.perf_counter()
        self._take()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "ResourceSampler":
        """Stop the thread and take one closing sample."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self._take()
        return self

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def rows(self) -> dict:
        """Plain-data columns for shipping over a result queue."""
        return {
            "times": self.times,
            "rss": self.rss,
            "cpu": self.cpu,
            "gcs": self.gcs,
        }


def record_resource_samples(tracer, rows: dict,
                            rank: int | None = None,
                            backend: str = "host") -> int:
    """Write one process's sampler ``rows`` into ``tracer``.

    Appends one :class:`ResourceSample` per row (record type
    ``resource`` in the v5 JSONL schema) and records the peak RSS, final
    CPU seconds, and GC collection delta as labelled
    ``repro.resource.*`` metrics for ``rank``.  Returns the number of
    samples recorded.
    """
    if tracer is None or not rows or not rows.get("times"):
        return 0
    times, rss, cpu, gcs = (
        rows["times"], rows["rss"], rows["cpu"], rows["gcs"]
    )
    for t, r, c, g in zip(times, rss, cpu, gcs):
        tracer.resource_samples.append(
            ResourceSample(rank=rank, t=t, rss_bytes=r,
                           cpu_seconds=c, gc_collections=int(g))
        )
    tracer.metric(
        "repro.resource.peak_rss_bytes", max(rss),
        kind="gauge", rank=rank, backend=backend,
    )
    tracer.metric(
        "repro.resource.cpu_seconds", cpu[-1],
        kind="gauge", rank=rank, backend=backend,
    )
    tracer.metric(
        "repro.resource.gc_collections", int(gcs[-1]) - int(gcs[0]),
        kind="gauge", rank=rank, backend=backend,
    )
    return len(times)


def resource_peaks(samples) -> dict[int | None, dict[str, float]]:
    """Per-rank peaks over an iterable of :class:`ResourceSample`.

    Returns ``{rank: {"peak_rss_bytes", "cpu_seconds", "gc_collections",
    "samples"}}``; CPU and GC are the max observed (both are cumulative
    within a process).
    """
    out: dict[int | None, dict[str, float]] = {}
    for s in samples:
        d = out.setdefault(s.rank, {
            "peak_rss_bytes": 0.0, "cpu_seconds": 0.0,
            "gc_collections": 0.0, "samples": 0,
        })
        d["peak_rss_bytes"] = max(d["peak_rss_bytes"], s.rss_bytes)
        d["cpu_seconds"] = max(d["cpu_seconds"], s.cpu_seconds)
        d["gc_collections"] = max(d["gc_collections"], s.gc_collections)
        d["samples"] += 1
    return out
