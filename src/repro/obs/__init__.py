"""Unified observability layer: phase spans, metrics, trace export, reports.

Every phase of the solve → adapt → balance cycle is double-clocked:

* **virtual seconds** — the modelled machine time accumulated by the
  :class:`~repro.parallel.ledger.CostLedger`/
  :class:`~repro.parallel.runtime.VirtualMachine` under the active
  :class:`~repro.parallel.machine.MachineModel`; this is the clock every
  paper figure is plotted in, and
* **wall seconds** — host ``time.perf_counter()`` time, i.e. what the
  reproduction itself costs to run.

A :class:`Tracer` records nestable :class:`Span` phases carrying both
clocks, point :class:`PointEvent` records (e.g. every virtual-machine
send/recv/probe during a remap), a legacy flat counter/gauge registry,
and a labelled :class:`MetricsRegistry` of time-series samples keyed by
``(name, labels, cycle, rank)``.  Traced virtual-machine runs additionally
record their happens-before DAG (:mod:`repro.obs.causal`): every operation
becomes a :class:`~repro.obs.causal.CausalNode` and every message a
:class:`~repro.obs.causal.CausalMsg`, from which :func:`analyze`
reconstructs the virtual-time critical path, per-rank slack, and
straggler rankings (``repro critical-path`` / ``repro diff``).
Measured backends (``multiprocessing``/``shm``/``mpi4py``) record the
same DAG in *wall* seconds: a per-rank :class:`WallRecorder` logs every
send/recv/probe/work segment on ``perf_counter``, a clock handshake
estimates per-rank offsets (:class:`ClockRecord`), and
:func:`merge_streams` aligns the streams onto one timeline so
``analyze(tracer, clock="wall")`` yields a measured critical path next
to the modelled one.
:mod:`repro.obs.export` serialises a tracer to JSONL (one record per
line, schema ``repro.obs/v4``; v1–v3 files remain readable) and to the
Chrome trace-event format that ``chrome://tracing`` / Perfetto can open
directly — including flow-event arrows for every delivered message.
:mod:`repro.obs.report` turns a trace file into an ASCII dashboard or a
self-contained HTML run report (``repro report <trace.jsonl>``).

Instrumented code takes an optional ``tracer`` argument and falls back to
the ambient tracer installed with :func:`use_tracer`, so experiment
drivers opt in with one ``with`` block and zero plumbing.
"""

from .causal import (
    CausalMsg,
    CausalNode,
    CausalRun,
    CriticalPath,
    TraceAnalysis,
    TraceDiff,
    analyze,
    critical_path,
    diff,
    format_critical_path,
    format_diff,
    rank_stats,
    run_from_result,
    runs_from_tracer,
    verify_makespans,
)
from .metrics import KINDS, MetricSample, MetricsRegistry
from .wallclock import ClockRecord, WallRecorder, merge_streams
from .tracer import (
    PointEvent,
    Span,
    Tracer,
    current_tracer,
    maybe_phase,
    phase_virtual_times,
    use_tracer,
)
from .export import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    SchemaError,
    export_chrome_trace,
    export_jsonl,
    read_jsonl,
    validate_jsonl,
)
from .report import render_ascii, render_html

__all__ = [
    "CausalMsg",
    "CausalNode",
    "CausalRun",
    "ClockRecord",
    "CriticalPath",
    "KINDS",
    "MetricSample",
    "MetricsRegistry",
    "PointEvent",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "SchemaError",
    "Span",
    "TraceAnalysis",
    "TraceDiff",
    "Tracer",
    "WallRecorder",
    "analyze",
    "critical_path",
    "current_tracer",
    "diff",
    "export_chrome_trace",
    "export_jsonl",
    "format_critical_path",
    "format_diff",
    "maybe_phase",
    "merge_streams",
    "phase_virtual_times",
    "rank_stats",
    "read_jsonl",
    "render_ascii",
    "render_html",
    "run_from_result",
    "runs_from_tracer",
    "use_tracer",
    "validate_jsonl",
    "verify_makespans",
]
