"""Unified observability layer: phase spans, counters, trace export.

Every phase of the solve → adapt → balance cycle is double-clocked:

* **virtual seconds** — the modelled machine time accumulated by the
  :class:`~repro.parallel.ledger.CostLedger`/
  :class:`~repro.parallel.runtime.VirtualMachine` under the active
  :class:`~repro.parallel.machine.MachineModel`; this is the clock every
  paper figure is plotted in, and
* **wall seconds** — host ``time.perf_counter()`` time, i.e. what the
  reproduction itself costs to run.

A :class:`Tracer` records nestable :class:`Span` phases carrying both
clocks, point :class:`PointEvent` records (e.g. every virtual-machine
send/recv/probe during a remap), and a flat counter/gauge registry.
:mod:`repro.obs.export` serialises a tracer to JSONL (one record per
line, schema ``repro.obs/v1``) and to the Chrome trace-event format that
``chrome://tracing`` / Perfetto can open directly.

Instrumented code takes an optional ``tracer`` argument and falls back to
the ambient tracer installed with :func:`use_tracer`, so experiment
drivers opt in with one ``with`` block and zero plumbing.
"""

from .tracer import (
    PointEvent,
    Span,
    Tracer,
    current_tracer,
    maybe_phase,
    phase_virtual_times,
    use_tracer,
)
from .export import (
    SCHEMA_VERSION,
    SchemaError,
    export_chrome_trace,
    export_jsonl,
    read_jsonl,
    validate_jsonl,
)

__all__ = [
    "PointEvent",
    "SCHEMA_VERSION",
    "SchemaError",
    "Span",
    "Tracer",
    "current_tracer",
    "export_chrome_trace",
    "export_jsonl",
    "maybe_phase",
    "phase_virtual_times",
    "read_jsonl",
    "use_tracer",
    "validate_jsonl",
]
