"""Unified observability layer: phase spans, metrics, trace export, reports.

Every phase of the solve → adapt → balance cycle is double-clocked:

* **virtual seconds** — the modelled machine time accumulated by the
  :class:`~repro.parallel.ledger.CostLedger`/
  :class:`~repro.parallel.runtime.VirtualMachine` under the active
  :class:`~repro.parallel.machine.MachineModel`; this is the clock every
  paper figure is plotted in, and
* **wall seconds** — host ``time.perf_counter()`` time, i.e. what the
  reproduction itself costs to run.

A :class:`Tracer` records nestable :class:`Span` phases carrying both
clocks, point :class:`PointEvent` records (e.g. every virtual-machine
send/recv/probe during a remap), a legacy flat counter/gauge registry,
and a labelled :class:`MetricsRegistry` of time-series samples keyed by
``(name, labels, cycle, rank)``.  :mod:`repro.obs.export` serialises a
tracer to JSONL (one record per line, schema ``repro.obs/v2``; v1 files
remain readable) and to the Chrome trace-event format that
``chrome://tracing`` / Perfetto can open directly.
:mod:`repro.obs.report` turns a trace file into an ASCII dashboard or a
self-contained HTML run report (``repro report <trace.jsonl>``).

Instrumented code takes an optional ``tracer`` argument and falls back to
the ambient tracer installed with :func:`use_tracer`, so experiment
drivers opt in with one ``with`` block and zero plumbing.
"""

from .metrics import KINDS, MetricSample, MetricsRegistry
from .tracer import (
    PointEvent,
    Span,
    Tracer,
    current_tracer,
    maybe_phase,
    phase_virtual_times,
    use_tracer,
)
from .export import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    SchemaError,
    export_chrome_trace,
    export_jsonl,
    read_jsonl,
    validate_jsonl,
)
from .report import render_ascii, render_html

__all__ = [
    "KINDS",
    "MetricSample",
    "MetricsRegistry",
    "PointEvent",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "SchemaError",
    "Span",
    "Tracer",
    "current_tracer",
    "export_chrome_trace",
    "export_jsonl",
    "maybe_phase",
    "phase_virtual_times",
    "read_jsonl",
    "render_ascii",
    "render_html",
    "use_tracer",
    "validate_jsonl",
]
