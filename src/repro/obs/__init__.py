"""Unified observability layer: phase spans, metrics, trace export, reports.

Every phase of the solve → adapt → balance cycle is double-clocked:

* **virtual seconds** — the modelled machine time accumulated by the
  :class:`~repro.parallel.ledger.CostLedger`/
  :class:`~repro.parallel.runtime.VirtualMachine` under the active
  :class:`~repro.parallel.machine.MachineModel`; this is the clock every
  paper figure is plotted in, and
* **wall seconds** — host ``time.perf_counter()`` time, i.e. what the
  reproduction itself costs to run.

A :class:`Tracer` records nestable :class:`Span` phases carrying both
clocks, point :class:`PointEvent` records (e.g. every virtual-machine
send/recv/probe during a remap), a legacy flat counter/gauge registry,
and a labelled :class:`MetricsRegistry` of time-series samples keyed by
``(name, labels, cycle, rank)``.  Traced virtual-machine runs additionally
record their happens-before DAG (:mod:`repro.obs.causal`): every operation
becomes a :class:`~repro.obs.causal.CausalNode` and every message a
:class:`~repro.obs.causal.CausalMsg`, from which :func:`analyze`
reconstructs the virtual-time critical path, per-rank slack, and
straggler rankings (``repro critical-path`` / ``repro diff``).
Measured backends (``multiprocessing``/``shm``/``mpi4py``) record the
same DAG in *wall* seconds: a per-rank :class:`WallRecorder` logs every
send/recv/probe/work segment on ``perf_counter``, a clock handshake
estimates per-rank offsets (:class:`ClockRecord`), and
:func:`merge_streams` aligns the streams onto one timeline so
``analyze(tracer, clock="wall")`` yields a measured critical path next
to the modelled one.
:mod:`repro.obs.export` serialises a tracer to JSONL (one record per
line, schema ``repro.obs/v5``; v1–v4 files remain readable) and to the
Chrome trace-event format that ``chrome://tracing`` / Perfetto can open
directly — including flow-event arrows for every delivered message.
:mod:`repro.obs.report` turns a trace file into an ASCII dashboard or a
self-contained HTML run report (``repro report <trace.jsonl>``).

Three live/longitudinal companions round the layer out.
:mod:`repro.obs.live` is a bounded in-process :class:`TelemetryHub` that
the tracer publishes phase/cycle/run frames into, plus the non-blocking
:class:`LiveChannel` side channel forked ranks stream progress and
resource frames over, and the in-place ASCII dashboard behind
``repro step --live`` / ``repro watch``.  :mod:`repro.obs.resource`
samples per-process RSS, CPU seconds, and GC collections into the trace
(``resource`` records + ``repro.resource.*`` metrics, schema v5).
:mod:`repro.obs.runs` is the ``.repro_runs/`` cross-run history store
(``repro runs list|show|compare|regress``) with rolling-baseline
regression flagging.

Instrumented code takes an optional ``tracer`` argument and falls back to
the ambient tracer installed with :func:`use_tracer`, so experiment
drivers opt in with one ``with`` block and zero plumbing.
"""

from .causal import (
    CausalMsg,
    CausalNode,
    CausalRun,
    CriticalPath,
    TraceAnalysis,
    TraceDiff,
    analyze,
    critical_path,
    diff,
    format_critical_path,
    format_diff,
    rank_stats,
    run_from_result,
    runs_from_tracer,
    verify_makespans,
)
from .metrics import KINDS, MetricSample, MetricsRegistry
from .wallclock import ClockRecord, WallRecorder, merge_streams
from .tracer import (
    PointEvent,
    Span,
    Tracer,
    current_tracer,
    maybe_phase,
    phase_virtual_times,
    use_tracer,
)
from .export import (
    SCHEMA_VERSION,
    SUPPORTED_SCHEMAS,
    SchemaError,
    export_chrome_trace,
    export_jsonl,
    read_jsonl,
    validate_jsonl,
)
from .report import render_ascii, render_html
from .live import (
    LiveChannel,
    LiveDisplay,
    TelemetryHub,
    current_live,
    render_dashboard,
    use_live,
)
from .resource import (
    ResourceSample,
    ResourceSampler,
    record_resource_samples,
    resource_peaks,
    sample_resources,
)
from .runs import (
    Regression,
    RunRecord,
    RunStore,
    find_regressions,
    hash_config,
    index_bench_results,
    index_trace,
    summarize_trace,
)

__all__ = [
    "CausalMsg",
    "CausalNode",
    "CausalRun",
    "ClockRecord",
    "CriticalPath",
    "KINDS",
    "LiveChannel",
    "LiveDisplay",
    "MetricSample",
    "MetricsRegistry",
    "PointEvent",
    "Regression",
    "ResourceSample",
    "ResourceSampler",
    "RunRecord",
    "RunStore",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "SchemaError",
    "Span",
    "TelemetryHub",
    "TraceAnalysis",
    "TraceDiff",
    "Tracer",
    "WallRecorder",
    "analyze",
    "critical_path",
    "current_live",
    "current_tracer",
    "diff",
    "export_chrome_trace",
    "export_jsonl",
    "find_regressions",
    "format_critical_path",
    "format_diff",
    "hash_config",
    "index_bench_results",
    "index_trace",
    "maybe_phase",
    "merge_streams",
    "phase_virtual_times",
    "rank_stats",
    "read_jsonl",
    "record_resource_samples",
    "render_ascii",
    "render_dashboard",
    "render_html",
    "resource_peaks",
    "run_from_result",
    "runs_from_tracer",
    "sample_resources",
    "summarize_trace",
    "use_live",
    "use_tracer",
    "validate_jsonl",
    "verify_makespans",
]
