"""Serialise a :class:`~repro.obs.tracer.Tracer` to JSONL and Chrome trace.

JSONL schema (``repro.obs/v5``)
-------------------------------
One JSON object per line.  The first line is the meta record; every other
line is a span, event, metric, node, msg, clock, resource, counter, or
gauge record:

``{"type": "meta", "schema": "repro.obs/v5", "spans": N, "events": M,
"counters": C, "gauges": G, "metrics": K, "nodes": D, "msgs": S,
"clocks": W, "resources": R}``
    Header; the counts must match the number of records that follow.
    v1 files (schema ``repro.obs/v1``, no ``metrics`` count, no ``metric``
    records), v2 files (schema ``repro.obs/v2``, no ``nodes``/``msgs``
    counts, no causal records), v3 files (schema ``repro.obs/v3``, no
    ``clocks`` count, no clock records), and v4 files (schema
    ``repro.obs/v4``, no ``resources`` count, no resource records) are
    still accepted by :func:`read_jsonl`/:func:`validate_jsonl`.

``{"type": "span", "index": int, "parent": int|null, "depth": int >= 0,
"name": str, "rank": int|null, "v_start": float, "v_end": float,
"wall_start": float, "wall_end": float, "attrs": object}``
    A closed phase span; ``v_end >= v_start``, ``wall_end >= wall_start``,
    and ``parent`` (when non-null) names an earlier span's ``index``.

``{"type": "event", "name": str, "v_time": float, "rank": int|null,
"span": int|null, "attrs": object}``
    A point event on the virtual timeline.

``{"type": "metric", "name": str, "kind": "counter"|"gauge"|"histogram",
"value": number | [number, ...], "labels": {str: str}, "cycle": int|null,
"rank": int|null, "v_time": float}``
    One labelled time-series sample keyed by ``(name, labels, cycle,
    rank)`` (see :mod:`repro.obs.metrics`); histogram values are lists.

``{"type": "node", "run": int, "id": int, "rank": int, "kind":
"work"|"elapse"|"send"|"recv"|"probe", "t_start": float, "t_end": float,
"wait": float >= 0, "msg": int|null}``
    One happens-before DAG node: an operation one rank executed during
    virtual-machine run ``run``, on that run's local virtual clock (the
    matching ``vm.run`` event carries the run's ``base`` offset into the
    trace timeline).  See :mod:`repro.obs.causal`.

``{"type": "msg", "run": int, "id": int, "src": int, "dst": int,
"tag": int, "nwords": int >= 0, "send_node": int, "recv_node": int|null}``
    One virtual-machine message, linking its send node to the recv/probe
    node that consumed it (``recv_node`` is null if never consumed).

``{"type": "clock", "run": int, "rank": int, "offset": float,
"skew": float >= 0}``
    How one rank's wall clock was aligned for one *measured* run (a
    ``vm.run`` event with ``clock="wall"``): the offset subtracted from
    that rank's ``perf_counter`` stream and the estimation uncertainty.
    See :mod:`repro.obs.wallclock`.

``{"type": "resource", "rank": int|null, "t": float >= 0,
"rss_bytes": number >= 0, "cpu_seconds": number >= 0,
"gc_collections": int >= 0}``
    One periodic process-resource sample (:mod:`repro.obs.resource`):
    resident set size, cumulative CPU seconds, and cumulative GC
    collections of the process running ``rank`` (null = the host/driver
    process), ``t`` seconds after that process's sampler started.

``{"type": "counter"|"gauge", "name": str, "value": number}``
    Legacy flat counters/gauges (no labels, cycle, or rank).

Chrome trace export writes the ``chrome://tracing`` / Perfetto JSON object
format: spans become complete ``"X"`` slices on the *virtual* timeline
(microsecond ``ts``/``dur``), point events become thread-scoped instants,
and counters become one final ``"C"`` sample.  Ranked records render on a
per-rank virtual thread; un-ranked spans render on tid 0 ("framework").
Causal nodes render as ``cat: "vm"`` slices on their rank's thread, and
every delivered message emits a flow-event pair (``ph: "s"`` at the send,
``ph: "f"`` at the consuming recv/probe, matching ``id``) so message
arrows draw between the two threads in chrome://tracing / Perfetto.
Measured runs (``clock="wall"``) render in a second process ("measured
wall", pid 1) so their wall timeline never mixes with the virtual one;
their timestamps are re-zeroed on the earliest measured run base.
"""

from __future__ import annotations

import json

from .causal import NODE_KINDS, CausalMsg, CausalNode
from .metrics import KINDS
from .resource import ResourceSample
from .tracer import PointEvent, Span, Tracer
from .wallclock import ClockRecord

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMAS",
    "SchemaError",
    "export_chrome_trace",
    "export_jsonl",
    "read_jsonl",
    "validate_jsonl",
]

SCHEMA_VERSION = "repro.obs/v5"

#: Schemas :func:`read_jsonl`/:func:`validate_jsonl` accept, oldest first
#: (v1 predates labelled metric records, v2 predates causal node/msg
#: records, v3 predates measured-run clock records, v4 predates resource
#: samples; all remain readable).
SUPPORTED_SCHEMAS = ("repro.obs/v1", "repro.obs/v2", "repro.obs/v3",
                     "repro.obs/v4", SCHEMA_VERSION)


class SchemaError(ValueError):
    """An exported trace file violates the documented JSONL schema."""


# --- JSONL -------------------------------------------------------------------


def export_jsonl(tracer: Tracer, path) -> int:
    """Write the tracer to ``path`` in the v5 JSONL schema.

    Open spans are skipped (a trace is exported after the run).  Returns
    the number of records written, including the meta line.
    """
    spans = [s for s in tracer.spans if not s.open]
    records = [
        {
            "type": "meta",
            "schema": SCHEMA_VERSION,
            "spans": len(spans),
            "events": len(tracer.events),
            "counters": len(tracer.counters),
            "gauges": len(tracer.gauges),
            "metrics": len(tracer.metrics),
            "nodes": len(tracer.causal_nodes),
            "msgs": len(tracer.causal_msgs),
            "clocks": len(tracer.clock_records),
            "resources": len(tracer.resource_samples),
        }
    ]
    for s in spans:
        records.append(
            {
                "type": "span",
                "index": s.index,
                "parent": s.parent,
                "depth": s.depth,
                "name": s.name,
                "rank": s.rank,
                "v_start": s.v_start,
                "v_end": s.v_end,
                "wall_start": s.wall_start,
                "wall_end": s.wall_end,
                "attrs": s.attrs,
            }
        )
    for e in tracer.events:
        records.append(
            {
                "type": "event",
                "name": e.name,
                "v_time": e.v_time,
                "rank": e.rank,
                "span": e.span,
                "attrs": e.attrs,
            }
        )
    for s in tracer.metrics.samples():
        records.append(
            {
                "type": "metric",
                "name": s.name,
                "kind": s.kind,
                "value": s.value,
                "labels": s.labels_dict,
                "cycle": s.cycle,
                "rank": s.rank,
                "v_time": s.v_time,
            }
        )
    for n in tracer.causal_nodes:
        records.append(
            {
                "type": "node",
                "run": n.run,
                "id": n.id,
                "rank": n.rank,
                "kind": n.kind,
                "t_start": n.t_start,
                "t_end": n.t_end,
                "wait": n.wait,
                "msg": n.msg,
            }
        )
    for m in tracer.causal_msgs:
        records.append(
            {
                "type": "msg",
                "run": m.run,
                "id": m.id,
                "src": m.src,
                "dst": m.dst,
                "tag": m.tag,
                "nwords": m.nwords,
                "send_node": m.send_node,
                "recv_node": m.recv_node,
            }
        )
    for c in tracer.clock_records:
        records.append(
            {
                "type": "clock",
                "run": c.run,
                "rank": c.rank,
                "offset": c.offset,
                "skew": c.skew,
            }
        )
    for r in tracer.resource_samples:
        records.append(
            {
                "type": "resource",
                "rank": r.rank,
                "t": r.t,
                "rss_bytes": r.rss_bytes,
                "cpu_seconds": r.cpu_seconds,
                "gc_collections": r.gc_collections,
            }
        )
    for name, value in tracer.counters.items():
        records.append({"type": "counter", "name": name, "value": value})
    for name, value in tracer.gauges.items():
        records.append({"type": "gauge", "name": name, "value": value})

    with open(path, "w") as fh:
        for rec in records:
            fh.write(json.dumps(rec) + "\n")
    return len(records)


def read_jsonl(path) -> Tracer:
    """Reconstruct a tracer from a v1-v5 JSONL file (validates on the way)."""
    validate_jsonl(path)
    tracer = Tracer()
    with open(path) as fh:
        for line in fh:
            rec = json.loads(line)
            if rec["type"] == "span":
                tracer.spans.append(
                    Span(
                        name=rec["name"],
                        index=rec["index"],
                        parent=rec["parent"],
                        depth=rec["depth"],
                        v_start=rec["v_start"],
                        wall_start=rec["wall_start"],
                        v_end=rec["v_end"],
                        wall_end=rec["wall_end"],
                        rank=rec["rank"],
                        attrs=rec["attrs"],
                    )
                )
            elif rec["type"] == "event":
                tracer.events.append(
                    PointEvent(
                        name=rec["name"],
                        v_time=rec["v_time"],
                        rank=rec["rank"],
                        span=rec["span"],
                        attrs=rec["attrs"],
                    )
                )
            elif rec["type"] == "metric":
                tracer.metrics.record(
                    rec["name"],
                    rec["value"],
                    kind=rec["kind"],
                    labels=rec["labels"] or None,
                    cycle=rec["cycle"],
                    rank=rec["rank"],
                    v_time=rec["v_time"],
                )
            elif rec["type"] == "node":
                tracer.causal_nodes.append(
                    CausalNode(
                        run=rec["run"],
                        id=rec["id"],
                        rank=rec["rank"],
                        kind=rec["kind"],
                        t_start=rec["t_start"],
                        t_end=rec["t_end"],
                        wait=rec["wait"],
                        msg=rec["msg"],
                    )
                )
            elif rec["type"] == "msg":
                tracer.causal_msgs.append(
                    CausalMsg(
                        run=rec["run"],
                        id=rec["id"],
                        src=rec["src"],
                        dst=rec["dst"],
                        tag=rec["tag"],
                        nwords=rec["nwords"],
                        send_node=rec["send_node"],
                        recv_node=rec["recv_node"],
                    )
                )
            elif rec["type"] == "clock":
                tracer.clock_records.append(
                    ClockRecord(
                        run=rec["run"],
                        rank=rec["rank"],
                        offset=rec["offset"],
                        skew=rec["skew"],
                    )
                )
            elif rec["type"] == "resource":
                tracer.resource_samples.append(
                    ResourceSample(
                        rank=rec["rank"],
                        t=rec["t"],
                        rss_bytes=rec["rss_bytes"],
                        cpu_seconds=rec["cpu_seconds"],
                        gc_collections=rec["gc_collections"],
                    )
                )
            elif rec["type"] == "counter":
                tracer.counters[rec["name"]] = rec["value"]
            elif rec["type"] == "gauge":
                tracer.gauges[rec["name"]] = rec["value"]
    cycles = tracer.metrics.cycles()
    if cycles:
        tracer._next_cycle = max(cycles) + 1
    if tracer.causal_nodes:
        tracer._next_run = max(n.run for n in tracer.causal_nodes) + 1
    if tracer.spans:
        tracer._vclock = max(s.v_end for s in tracer.spans)
    return tracer


_REQUIRED = {
    "meta": {"schema": str, "spans": int, "events": int, "counters": int,
             "gauges": int},
    "span": {"index": int, "depth": int, "name": str, "v_start": (int, float),
             "v_end": (int, float), "wall_start": (int, float),
             "wall_end": (int, float), "attrs": dict},
    "event": {"name": str, "v_time": (int, float), "attrs": dict},
    "metric": {"name": str, "kind": str, "labels": dict,
               "v_time": (int, float)},
    "node": {"run": int, "id": int, "rank": int, "kind": str,
             "t_start": (int, float), "t_end": (int, float),
             "wait": (int, float)},
    "msg": {"run": int, "id": int, "src": int, "dst": int, "tag": int,
            "nwords": int, "send_node": int},
    "clock": {"run": int, "rank": int, "offset": (int, float),
              "skew": (int, float)},
    "resource": {"t": (int, float), "rss_bytes": (int, float),
                 "cpu_seconds": (int, float), "gc_collections": int},
    "counter": {"name": str, "value": (int, float)},
    "gauge": {"name": str, "value": (int, float)},
}
_NULLABLE_INT = {"span": ("parent", "rank"), "event": ("rank", "span"),
                 "metric": ("cycle", "rank"), "node": ("msg",),
                 "msg": ("recv_node",), "resource": ("rank",)}


def _is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def _check_metric(rec, lineno: int) -> None:
    if rec["kind"] not in KINDS:
        raise SchemaError(
            f"line {lineno}: metric.kind {rec['kind']!r} not in {KINDS}"
        )
    value = rec.get("value")
    if rec["kind"] == "histogram":
        if not isinstance(value, list) or not all(_is_number(v) for v in value):
            raise SchemaError(
                f"line {lineno}: histogram metric value must be a list of "
                "numbers"
            )
    elif not _is_number(value):
        raise SchemaError(
            f"line {lineno}: {rec['kind']} metric value must be a number"
        )
    for k, v in rec["labels"].items():
        if not isinstance(k, str) or not isinstance(v, str):
            raise SchemaError(
                f"line {lineno}: metric labels must map str to str"
            )


def validate_jsonl(path) -> dict:
    """Validate a JSONL trace against the v5 (or legacy v1-v4) schema.

    Raises :class:`SchemaError` on the first violation; returns a summary
    ``{"spans": N, "events": M, "counters": C, "gauges": G, "metrics": K,
    "nodes": D, "msgs": S, "clocks": W, "resources": R}`` on success
    (``metrics`` is 0 for v1 files, ``nodes``/``msgs`` are 0 for v1/v2
    files, ``clocks`` is 0 for v1-v3 files, and ``resources`` is 0 for
    v1-v4 files, which may not contain the corresponding records).
    """
    counts = {"span": 0, "event": 0, "metric": 0, "node": 0, "msg": 0,
              "clock": 0, "resource": 0, "counter": 0, "gauge": 0}
    meta = None
    schema = None
    version = 0
    span_indices: set[int] = set()
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            if not line.strip():
                raise SchemaError(f"line {lineno}: blank line")
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"line {lineno}: invalid JSON: {exc}") from exc
            if not isinstance(rec, dict):
                raise SchemaError(f"line {lineno}: record must be an object")
            kind = rec.get("type")
            if lineno == 1:
                if kind != "meta":
                    raise SchemaError("line 1: first record must be the meta line")
                meta = rec
            elif kind == "meta":
                raise SchemaError(f"line {lineno}: duplicate meta record")
            if kind not in _REQUIRED:
                raise SchemaError(f"line {lineno}: unknown record type {kind!r}")
            for key, typ in _REQUIRED[kind].items():
                if key not in rec:
                    raise SchemaError(f"line {lineno}: {kind} missing {key!r}")
                if not isinstance(rec[key], typ) or isinstance(rec[key], bool):
                    raise SchemaError(
                        f"line {lineno}: {kind}.{key} has type "
                        f"{type(rec[key]).__name__}"
                    )
            for key in _NULLABLE_INT.get(kind, ()):
                v = rec.get(key)
                if v is not None and (not isinstance(v, int) or isinstance(v, bool)):
                    raise SchemaError(
                        f"line {lineno}: {kind}.{key} must be an int or null"
                    )
            if kind == "meta":
                schema = rec["schema"]
                if schema not in SUPPORTED_SCHEMAS:
                    raise SchemaError(
                        f"unsupported schema {schema!r} "
                        f"(expected one of {SUPPORTED_SCHEMAS})"
                    )
                version = SUPPORTED_SCHEMAS.index(schema) + 1
                if version >= 2 and not isinstance(rec.get("metrics"), int):
                    raise SchemaError("meta missing integer 'metrics' count")
                if version >= 3:
                    for key in ("nodes", "msgs"):
                        if not isinstance(rec.get(key), int):
                            raise SchemaError(
                                f"meta missing integer {key!r} count"
                            )
                if version >= 4 and not isinstance(rec.get("clocks"), int):
                    raise SchemaError("meta missing integer 'clocks' count")
                if version >= 5 and not isinstance(rec.get("resources"), int):
                    raise SchemaError("meta missing integer 'resources' count")
                continue
            if kind == "metric":
                if version < 2:
                    raise SchemaError(
                        f"line {lineno}: metric records require schema "
                        f"repro.obs/v2 or later, file declares {schema!r}"
                    )
                if "value" not in rec:
                    raise SchemaError(f"line {lineno}: metric missing 'value'")
                if "cycle" not in rec or "rank" not in rec:
                    raise SchemaError(
                        f"line {lineno}: metric missing 'cycle' or 'rank'"
                    )
                _check_metric(rec, lineno)
            if kind == "clock":
                if version < 4:
                    raise SchemaError(
                        f"line {lineno}: clock records require schema "
                        f"'repro.obs/v4' or later, file declares {schema!r}"
                    )
                if rec["skew"] < 0:
                    raise SchemaError(f"line {lineno}: negative clock skew")
            if kind == "resource":
                if version < 5:
                    raise SchemaError(
                        f"line {lineno}: resource records require schema "
                        f"{SCHEMA_VERSION!r}, file declares {schema!r}"
                    )
                if "rank" not in rec:
                    raise SchemaError(f"line {lineno}: resource missing 'rank'")
                for key in ("t", "rss_bytes", "cpu_seconds",
                            "gc_collections"):
                    if rec[key] < 0:
                        raise SchemaError(
                            f"line {lineno}: negative resource.{key}"
                        )
            if kind in ("node", "msg"):
                if version < 3:
                    raise SchemaError(
                        f"line {lineno}: {kind} records require schema "
                        "'repro.obs/v3' or later, file declares "
                        f"{schema!r}"
                    )
                if kind == "node":
                    if rec["kind"] not in NODE_KINDS:
                        raise SchemaError(
                            f"line {lineno}: node.kind {rec['kind']!r} not in "
                            f"{NODE_KINDS}"
                        )
                    if "msg" not in rec:
                        raise SchemaError(f"line {lineno}: node missing 'msg'")
                    if rec["t_end"] < rec["t_start"]:
                        raise SchemaError(
                            f"line {lineno}: node ends before it starts"
                        )
                    if rec["wait"] < 0:
                        raise SchemaError(f"line {lineno}: negative node wait")
                else:
                    if "recv_node" not in rec:
                        raise SchemaError(
                            f"line {lineno}: msg missing 'recv_node'"
                        )
                    if rec["nwords"] < 0:
                        raise SchemaError(f"line {lineno}: negative msg nwords")
            counts[kind] += 1
            if kind == "span":
                if rec["v_end"] < rec["v_start"]:
                    raise SchemaError(f"line {lineno}: span ends before it starts")
                if rec["wall_end"] < rec["wall_start"]:
                    raise SchemaError(
                        f"line {lineno}: span wall clock runs backwards"
                    )
                if rec["depth"] < 0:
                    raise SchemaError(f"line {lineno}: negative depth")
                parent = rec["parent"]
                if parent is not None and parent not in span_indices:
                    raise SchemaError(
                        f"line {lineno}: parent {parent} not seen before span "
                        f"{rec['index']}"
                    )
                span_indices.add(rec["index"])
    if meta is None:
        raise SchemaError("empty trace file (no meta record)")
    expected = [("span", "spans"), ("event", "events"),
                ("counter", "counters"), ("gauge", "gauges")]
    if version >= 2:
        expected.append(("metric", "metrics"))
    if version >= 3:
        expected.extend([("node", "nodes"), ("msg", "msgs")])
    if version >= 4:
        expected.append(("clock", "clocks"))
    if version >= 5:
        expected.append(("resource", "resources"))
    for kind, key in expected:
        if counts[kind] != meta[key]:
            raise SchemaError(
                f"meta declares {meta[key]} {key}, found {counts[kind]}"
            )
    return {"spans": counts["span"], "events": counts["event"],
            "counters": counts["counter"], "gauges": counts["gauge"],
            "metrics": counts["metric"], "nodes": counts["node"],
            "msgs": counts["msg"], "clocks": counts["clock"],
            "resources": counts["resource"]}


# --- Chrome trace ------------------------------------------------------------

_US = 1e6  # Chrome trace timestamps are microseconds


def _tid(rank: int | None) -> int:
    return 0 if rank is None else rank + 1


def export_chrome_trace(tracer: Tracer, path) -> int:
    """Write a ``chrome://tracing``-loadable JSON file on the virtual clock.

    Returns the number of trace events written (excluding metadata).
    """
    events: list[dict] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": "repro virtual machine"}},
        {"ph": "M", "pid": 0, "tid": 0, "name": "thread_name",
         "args": {"name": "framework"}},
    ]
    # measured runs (clock="wall") render in their own process so the
    # wall timeline never mixes with the virtual one
    wall_runs = {
        e.attrs["run"]
        for e in tracer.events
        if e.name == "vm.run" and e.attrs.get("clock") == "wall"
    }
    ranks = sorted(
        {s.rank for s in tracer.spans if s.rank is not None}
        | {e.rank for e in tracer.events if e.rank is not None}
        | {n.rank for n in tracer.causal_nodes if n.run not in wall_runs}
    )
    for r in ranks:
        events.append(
            {"ph": "M", "pid": 0, "tid": _tid(r), "name": "thread_name",
             "args": {"name": f"rank {r}"}}
        )
    wall_ranks = sorted(
        {n.rank for n in tracer.causal_nodes if n.run in wall_runs}
    )
    if wall_ranks:
        events.append(
            {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
             "args": {"name": "repro measured wall"}}
        )
        for r in wall_ranks:
            events.append(
                {"ph": "M", "pid": 1, "tid": _tid(r), "name": "thread_name",
                 "args": {"name": f"rank {r}"}}
            )
    n = 0
    for s in tracer.spans:
        if s.open:
            continue
        events.append(
            {
                "ph": "X",
                "pid": 0,
                "tid": _tid(s.rank),
                "name": s.name,
                "cat": "phase",
                "ts": s.v_start * _US,
                "dur": s.v_duration * _US,
                "args": {"wall_seconds": s.wall_duration, **s.attrs},
            }
        )
        n += 1
    for e in tracer.events:
        events.append(
            {
                "ph": "i",
                "s": "t",
                "pid": 0,
                "tid": _tid(e.rank),
                "name": e.name,
                "cat": "event",
                "ts": e.v_time * _US,
                "args": dict(e.attrs),
            }
        )
        n += 1
    # causal record: per-op slices on each rank's thread, plus a flow-event
    # pair per delivered message so the send->recv arrow renders
    base_of = {
        e.attrs["run"]: e.attrs.get("base", e.v_time)
        for e in tracer.events
        if e.name == "vm.run"
    }
    # wall-run bases are raw parent perf_counter epochs; re-zero them on
    # the earliest one so the measured process starts near ts=0
    wall_epoch = min(
        (base_of[r] for r in wall_runs if r in base_of), default=0.0
    )

    def _placement(run: int) -> tuple[int, float]:
        """(pid, base) placing a run's nodes on its process timeline."""
        if run in wall_runs:
            return 1, base_of.get(run, wall_epoch) - wall_epoch
        return 0, base_of.get(run, 0.0)

    nodes_by_run: dict[tuple[int, int], object] = {}
    for nd in tracer.causal_nodes:
        nodes_by_run[(nd.run, nd.id)] = nd
        pid, base = _placement(nd.run)
        events.append(
            {
                "ph": "X",
                "pid": pid,
                "tid": _tid(nd.rank),
                "name": f"vm.{nd.kind}",
                "cat": "vm",
                "ts": (base + nd.t_start) * _US,
                "dur": (nd.t_end - nd.t_start) * _US,
                "args": {"run": nd.run, "node": nd.id, "wait": nd.wait},
            }
        )
        n += 1
    flow = 0
    for m in tracer.causal_msgs:
        if m.recv_node is None:
            continue
        send = nodes_by_run.get((m.run, m.send_node))
        recv = nodes_by_run.get((m.run, m.recv_node))
        if send is None or recv is None:
            continue
        pid, base = _placement(m.run)
        common = {"pid": pid, "cat": "vm.msg", "name": "msg", "id": flow}
        events.append(
            {**common, "ph": "s", "tid": _tid(send.rank),
             "ts": (base + send.t_end) * _US,
             "args": {"tag": m.tag, "nwords": m.nwords}}
        )
        events.append(
            {**common, "ph": "f", "bp": "e", "tid": _tid(recv.rank),
             "ts": (base + recv.t_end) * _US,
             "args": {"tag": m.tag, "nwords": m.nwords}}
        )
        flow += 1
        n += 2
    t_end = max([s.v_end for s in tracer.spans if not s.open] or [0.0])
    for name, value in sorted(tracer.counters.items()):
        events.append(
            {"ph": "C", "pid": 0, "tid": 0, "name": name,
             "ts": t_end * _US, "args": {"value": value}}
        )
        n += 1
    with open(path, "w") as fh:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, fh)
    return n
