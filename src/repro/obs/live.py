"""In-flight telemetry: hub, rank side channel, and ASCII dashboard.

The obs stack through schema v4 is post-mortem — a trace exists only
once the run has finished.  This module adds the *live* path:

:class:`TelemetryHub`
    A bounded, thread-safe in-process bus.  The :class:`~repro.obs.tracer.
    Tracer` publishes phase open/close and cycle frames into the ambient
    hub (installed with :func:`use_live`), backends publish per-rank
    progress, and resource samplers publish usage — the hub folds every
    frame into one aggregate ``snapshot()`` dict the dashboard renders
    from.  Publishing is a dict append under a lock plus an O(1) state
    update; the hub never blocks a publisher.

:class:`LiveChannel`
    The side channel for forked ``multiprocessing``/``shm`` ranks: a
    bounded ``multiprocessing`` queue the children write compact frame
    tuples into with ``put_nowait`` — a full queue *drops* the frame, so
    the measured clock path never blocks on telemetry — and the parent
    drains into the hub between dashboard refreshes.

:class:`LiveDisplay`
    A daemon thread that renders :func:`render_dashboard` every
    ``interval`` seconds, refreshing in place on a TTY (ANSI cursor-up)
    and printing plain periodic snapshots otherwise.  It also drains the
    run's :class:`LiveChannel` and — so a second terminal can attach with
    ``repro watch`` — atomically publishes each snapshot to a JSON status
    file under ``.repro_runs/live/``.

Nothing here touches the modelled clocks: a run with no hub installed
pays one ``None`` check per phase open/close.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar

__all__ = [
    "LiveChannel",
    "LiveDisplay",
    "TelemetryHub",
    "current_live",
    "default_status_dir",
    "load_status",
    "render_dashboard",
    "use_live",
]

#: Frames kept in the hub's raw ring buffer (the aggregate state is
#: unbounded in *names* but bounded by rank count and phase vocabulary).
DEFAULT_CAPACITY = 4096

#: Wire frame kinds a :class:`LiveChannel` carries from forked ranks.
_PROG, _RES = 0, 1


class TelemetryHub:
    """Bounded telemetry bus aggregating frames into a renderable state."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, title: str = ""):
        self._lock = threading.Lock()
        self._frames: deque = deque(maxlen=capacity)
        #: The run's :class:`LiveChannel`, when one exists.  The CLI
        #: creates it before the solver starts; measured backends find it
        #: here (via :func:`current_live`) and hand it to their forked
        #: ranks, and the :class:`LiveDisplay` drains it.
        self.channel: "LiveChannel | None" = None
        self._t0 = time.perf_counter()
        self._state: dict = {
            "title": title,
            "started": time.time(),
            "elapsed": 0.0,
            "cycle": None,
            "phase_stack": [],
            "phases_done": [],  # (name, virtual_s, wall_s), most recent last
            "ranks": {},  # rank -> progress dict
            "resources": {},  # key ("host" or rank) -> usage dict
            "runs": 0,  # vm/backend runs completed
            "status": "running",
            "frames_dropped": 0,
        }

    # -- publishing ---------------------------------------------------------

    def publish(self, kind: str, **fields) -> None:
        """Fold one frame into the aggregate state (never blocks)."""
        now = time.perf_counter() - self._t0
        with self._lock:
            self._frames.append((now, kind, fields))
            st = self._state
            st["elapsed"] = now
            if kind == "phase_begin":
                st["phase_stack"].append(fields.get("name", "?"))
            elif kind == "phase_end":
                stack = st["phase_stack"]
                if stack:
                    stack.pop()
                done = st["phases_done"]
                done.append((
                    fields.get("name", "?"),
                    fields.get("v_seconds", 0.0),
                    fields.get("wall_seconds", 0.0),
                ))
                del done[:-12]
            elif kind == "cycle":
                st["cycle"] = fields.get("cycle")
            elif kind == "run":
                st["runs"] += 1
            elif kind == "rank_time":
                # one frame per recorded per-rank busy/idle series: busy
                # adds to both busy and total, idle only to total, so
                # busy/total is the live busy fraction across runs
                busy = fields.get("name", "").endswith("busy_seconds")
                for r, v in enumerate(fields.get("values", ())):
                    d = st["ranks"].setdefault(r, {})
                    if busy:
                        d["busy"] = d.get("busy", 0.0) + v
                    d["total"] = d.get("total", 0.0) + v
            elif kind == "progress":
                r = fields.get("rank")
                d = st["ranks"].setdefault(r, {})
                for k in ("msgs", "words", "waited", "elapsed"):
                    if k in fields:
                        d[k] = fields[k]
            elif kind == "resource":
                key = fields.get("rank")
                st["resources"][key if key is not None else "host"] = {
                    "rss_bytes": fields.get("rss_bytes", 0.0),
                    "cpu_seconds": fields.get("cpu_seconds", 0.0),
                    "gc_collections": fields.get("gc_collections", 0),
                }
            elif kind == "status":
                st["status"] = fields.get("status", st["status"])
            elif kind == "dropped":
                st["frames_dropped"] += fields.get("count", 1)

    # -- reading ------------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-serialisable copy of the aggregate state."""
        with self._lock:
            st = self._state
            return {
                **{k: v for k, v in st.items()
                   if k not in ("phase_stack", "phases_done", "ranks",
                                "resources")},
                "phase_stack": list(st["phase_stack"]),
                "phases_done": [list(p) for p in st["phases_done"]],
                "ranks": {str(r): dict(d) for r, d in st["ranks"].items()},
                "resources": {
                    str(k): dict(d) for k, d in st["resources"].items()
                },
            }

    def frames(self) -> list:
        """The raw frame ring (newest last); mainly for tests."""
        with self._lock:
            return list(self._frames)


# --- ambient hub -------------------------------------------------------------

_CURRENT: ContextVar[TelemetryHub | None] = ContextVar(
    "repro_obs_live_hub", default=None
)


def current_live() -> TelemetryHub | None:
    """The ambient telemetry hub installed by :func:`use_live`, if any."""
    return _CURRENT.get()


@contextmanager
def use_live(hub: TelemetryHub):
    """Install ``hub`` as the ambient telemetry hub for the ``with`` body."""
    token = _CURRENT.set(hub)
    try:
        yield hub
    finally:
        _CURRENT.reset(token)


# --- rank side channel -------------------------------------------------------


class LiveChannel:
    """Bounded mp queue carrying compact frames from forked ranks.

    Children call :meth:`emit_progress` / :meth:`emit_resource` (both
    ``put_nowait``: a full queue drops the frame and bumps a local drop
    counter — telemetry never blocks the measured clock path).  The
    parent calls :meth:`drain` periodically to fold queued frames into a
    hub.  The queue object is fork-inherited, so one channel serves a
    whole run.
    """

    def __init__(self, ctx=None, maxsize: int = 1024):
        if ctx is None:
            import multiprocessing

            ctx = multiprocessing.get_context("fork")
        self._q = ctx.Queue(maxsize)
        self.dropped = 0  # per-process counter (child-side drops stay local)

    def _put(self, frame) -> None:
        try:
            self._q.put_nowait(frame)
        except Exception:
            self.dropped += 1

    def emit_progress(self, rank: int, elapsed: float, msgs: int,
                      words: int, waited: float) -> None:
        self._put((_PROG, rank, elapsed, msgs, words, waited))

    def emit_resource(self, rank: int | None, t: float, rss: float,
                      cpu: float, gcs: int) -> None:
        self._put((_RES, rank, t, rss, cpu, gcs))

    def drain(self, hub: TelemetryHub, limit: int = 10000) -> int:
        """Fold up to ``limit`` queued frames into ``hub``; returns count."""
        import queue as _queue

        n = 0
        while n < limit:
            try:
                frame = self._q.get_nowait()
            except (_queue.Empty, OSError, ValueError):
                break
            n += 1
            kind = frame[0]
            if kind == _PROG:
                _, rank, elapsed, msgs, words, waited = frame
                hub.publish("progress", rank=rank, elapsed=elapsed,
                            msgs=msgs, words=words, waited=waited)
            elif kind == _RES:
                _, rank, t, rss, cpu, gcs = frame
                hub.publish("resource", rank=rank, rss_bytes=rss,
                            cpu_seconds=cpu, gc_collections=gcs)
        return n

    def close(self) -> None:
        try:
            self._q.close()
            self._q.cancel_join_thread()
        except Exception:
            pass


# --- dashboard rendering -----------------------------------------------------


def _fmt_bytes(v: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(v) < 1024 or unit == "GiB":
            return f"{v:.1f}{unit}" if unit != "B" else f"{int(v)}B"
        v /= 1024
    return f"{v:.1f}GiB"  # pragma: no cover - loop always returns


def _bar(frac: float, width: int = 14) -> str:
    frac = min(max(frac, 0.0), 1.0)
    full = int(round(frac * width))
    return "#" * full + "." * (width - full)


def render_dashboard(snapshot: dict, width: int = 78,
                     max_ranks: int = 16) -> str:
    """Render one hub snapshot as a fixed-shape ASCII dashboard.

    Pure function of the snapshot, so ``repro watch`` renders the same
    picture from a published status file that ``repro step --live``
    renders in-process.
    """
    st = snapshot
    lines: list[str] = []
    title = st.get("title") or "repro live"
    status = st.get("status", "running")
    lines.append(
        f"{title}  [{status}]  elapsed {st.get('elapsed', 0.0):.1f}s"
        [:width]
    )
    cycle = st.get("cycle")
    stack = st.get("phase_stack") or []
    phase = " > ".join(stack) if stack else "-"
    lines.append(
        f"cycle {cycle if cycle is not None else '-'} | phase: {phase}"
        [:width]
    )
    done = st.get("phases_done") or []
    if done:
        parts = [f"{name} {v:.3f}s" for name, v, _w in done[-5:]]
        lines.append(("recent phases: " + " | ".join(parts))[:width])
    runs = st.get("runs", 0)
    dropped = st.get("frames_dropped", 0)
    tail = f"vm/backend runs: {runs}"
    if dropped:
        tail += f"  (frames dropped: {dropped})"
    lines.append(tail[:width])

    ranks = st.get("ranks") or {}
    if ranks:
        lines.append("per-rank busy/idle:")
        shown = sorted(ranks, key=lambda r: int(r))[:max_ranks]
        for r in shown:
            d = ranks[r]
            total = d.get("total", 0.0)
            busy = d.get("busy", 0.0)
            if total > 0:
                frac = busy / total
                detail = f"busy {frac * 100:5.1f}%"
            elif d.get("elapsed"):
                elapsed = d["elapsed"]
                waited = d.get("waited", 0.0)
                frac = max(0.0, 1.0 - waited / elapsed) if elapsed else 0.0
                detail = (f"busy {frac * 100:5.1f}%  msgs {d.get('msgs', 0)}"
                          f"  words {d.get('words', 0)}")
            else:
                frac, detail = 0.0, "..."
            lines.append(f"  r{int(r):<4d} {_bar(frac)} {detail}"[:width])
        if len(ranks) > max_ranks:
            lines.append(f"  ... and {len(ranks) - max_ranks} more ranks")

    res = st.get("resources") or {}
    if res:
        lines.append("resources (rss / cpu / gc):")

        def _key(k):
            return (0, 0) if k == "host" else (1, int(k))

        for k in sorted(res, key=_key)[: max_ranks + 1]:
            d = res[k]
            label = "host" if k == "host" else f"r{int(k)}"
            lines.append(
                f"  {label:<5s} {_fmt_bytes(d.get('rss_bytes', 0.0)):>10s}"
                f" / {d.get('cpu_seconds', 0.0):7.2f}s"
                f" / {int(d.get('gc_collections', 0)):d}"[:width]
            )
    return "\n".join(lines)


# --- status files ------------------------------------------------------------


def default_status_dir(root: str | None = None) -> str:
    """Directory live runs publish status files into (``.repro_runs/live``)."""
    from .runs import default_store_dir

    return os.path.join(root or default_store_dir(), "live")


def publish_status(snapshot: dict, path: str) -> None:
    """Atomically write ``snapshot`` as JSON to ``path`` (tmp + rename)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(snapshot, fh)
    os.replace(tmp, path)


def load_status(path: str) -> dict | None:
    """Read a published status snapshot; None when missing/corrupt."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None


def newest_status(status_dir: str) -> str | None:
    """Path of the most recently touched status file, if any."""
    try:
        names = [n for n in os.listdir(status_dir) if n.endswith(".json")]
    except OSError:
        return None
    paths = [os.path.join(status_dir, n) for n in names]
    paths = [p for p in paths if os.path.isfile(p)]
    return max(paths, key=os.path.getmtime) if paths else None


# --- display loop ------------------------------------------------------------


class LiveDisplay:
    """Background renderer: refreshes the dashboard in place on a TTY.

    Off-TTY (CI, piped output) it prints one plain snapshot per
    ``plain_every`` refresh intervals instead of emitting ANSI control
    sequences.  Each tick drains the run's :class:`LiveChannel` (when
    given) and publishes the snapshot to ``status_path`` (when given)
    for ``repro watch``.
    """

    def __init__(self, hub: TelemetryHub, stream=None, interval: float = 0.2,
                 channel: LiveChannel | None = None,
                 status_path: str | None = None, plain_every: int = 5):
        self.hub = hub
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.channel = channel
        self.status_path = status_path
        self.plain_every = max(1, plain_every)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._last_height = 0
        self._ticks = 0
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())

    def _render_once(self, final: bool = False) -> None:
        if self.channel is not None:
            self.channel.drain(self.hub)
        snap = self.hub.snapshot()
        if self.status_path:
            try:
                publish_status(snap, self.status_path)
            except OSError:
                pass
        text = render_dashboard(snap)
        self._ticks += 1
        if self._isatty:
            if self._last_height:
                # move up over the previous frame and clear to end of screen
                self.stream.write(f"\x1b[{self._last_height}F\x1b[J")
            self.stream.write(text + "\n")
            self._last_height = text.count("\n") + 1
        elif final or self._ticks % self.plain_every == 1:
            self.stream.write(text + "\n---\n")
        self.stream.flush()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._render_once()

    def start(self) -> "LiveDisplay":
        self._render_once()
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-display", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, status: str = "done") -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.hub.publish("status", status=status)
        self._render_once(final=True)
        if self.status_path:
            try:
                os.unlink(self.status_path)
            except OSError:
                pass

    def __enter__(self) -> "LiveDisplay":
        return self.start()

    def __exit__(self, exc_type, *exc) -> None:
        self.stop(status="done" if exc_type is None else "failed")
