"""Figure 8 — actual impact of load balancing on flow-solver times.

Paper claims the bench asserts:
* the measured curves have the same basic shape as the Fig. 7 bounds but
  sit below them (real adaptions aren't worst cases);
* at P = 64 the improvement factors order Real_1 > Real_2 > Real_3
  (paper: 3.46, 2.03, 1.52);
* Real_3 essentially attains its theoretical maximum;
* the improvement grows with P for every strategy.
"""

import pytest

from repro.experiments.figures import (
    fig7_max_improvement,
    fig8_actual_improvement,
)
from repro.experiments.report import format_series
from repro.experiments.sweep import actual_improvement, growth_factor


def _improvement_at(resolution, name, p):
    """One point of the Fig. 8 curve (the benchmarked kernel)."""
    import numpy as np

    from repro.core import CostModel, LoadBalancedAdaptiveSolver
    from repro.experiments.sweep import case_for
    from repro.parallel.machine import SP2_1997

    case = case_for(resolution)
    solver = LoadBalancedAdaptiveSolver(
        case.mesh, p, machine=SP2_1997,
        cost_model=CostModel(machine=SP2_1997), imbalance_threshold=1.0,
    )
    part_before = solver.part.copy()
    solver.adapt_step(edge_mask=case.marking_mask(name))
    w = solver.adaptive.wcomp().astype(np.float64)
    unbal = np.bincount(part_before, weights=w, minlength=p).max()
    bal = np.bincount(solver.part, weights=w, minlength=p).max()
    return float(unbal / bal)


def test_fig8_series(resolution, benchmark):
    benchmark(lambda: _improvement_at(resolution, "Real_1", 8))

    actual = fig8_actual_improvement(resolution)
    bound = fig7_max_improvement(resolution)  # bounds at OUR growth factors
    print()
    for name, series in actual.items():
        print(f"  {name:7s} actual: {format_series(series, '6.2f')}")
        print(f"  {name:7s} bound : {format_series(bound[name], '6.2f')}")

    for name, series in actual.items():
        # bounded by the theoretical maximum (small tolerance: the bound
        # assumes exact balance, the partitioner allows a few % slack)
        for p, v in series.items():
            assert v <= bound[name][p] * 1.10, (name, p)
        # improvement grows from few to many processors
        assert series[64] >= series[4] >= series[1] - 1e-9
        assert series[1] == pytest.approx(1.0)

    # ordering at P=64 (paper: 3.46 > 2.03 > 1.52)
    assert actual["Real_1"][64] > actual["Real_2"][64] > actual["Real_3"][64]
    # Real_3 gets close to its maximum (paper: attains it)
    g3 = growth_factor(resolution, "Real_3")
    sat3 = min(8.0, 64 * (g3 - 1.0) + 1.0) / g3
    assert actual["Real_3"][64] > 0.75 * sat3
