"""Extension — partitioner comparison on the rotor dual graph.

Paper §4.2: "A good partitioner should minimize the total execution time
by balancing the computational loads and reducing the interprocessor
communication time ... any partitioning algorithm could be used, as long
as it is fast, and delivers reasonably balanced partitions."

The bench compares the multilevel method against the classic alternatives
(RCB, spectral bisection, random, index blocks) on edge cut, communication
volume, and balance — multilevel must dominate random/blocks on cut while
staying balanced, matching why the paper reaches for a MeTiS-family
partitioner.
"""

import numpy as np

from repro.core.dualgraph import DualGraph
from repro.partition import (
    block_partition,
    comm_volume,
    edgecut,
    imbalance,
    multilevel_kway,
    random_partition,
    rcb_partition,
    spectral_bisect,
)


def test_partitioner_comparison(case, benchmark):
    dual = DualGraph(case.mesh)
    g = dual.comp_graph()
    cent = dual.element_centroids()
    k = 8

    results = {}
    results["multilevel"] = benchmark(lambda: multilevel_kway(g, k, seed=0))
    results["rcb"] = rcb_partition(cent, g.vwgt.astype(float), k)
    results["random"] = random_partition(g, k, seed=0)
    results["blocks"] = block_partition(g, k)

    print("\n  method      edgecut  commvol  imbalance")
    rows = {}
    for name, part in results.items():
        rows[name] = (edgecut(g, part), comm_volume(g, part, k),
                      imbalance(g, part, k))
        print(f"  {name:10s} {rows[name][0]:8d} {rows[name][1]:8d} "
              f"{rows[name][2]:10.3f}")

    # multilevel: balanced, and competitive with the best method on this
    # graph (on a structured box domain RCB's axis-aligned cuts are
    # near-optimal, so "within a small factor" is the honest claim; the
    # graph method's real edge — low-movement seeded repartitioning under
    # adapted weights — is measured in bench_ablate_seeding)
    assert rows["multilevel"][2] <= 1.1
    assert rows["rcb"][2] <= 1.1
    assert rows["multilevel"][0] <= 1.4 * rows["rcb"][0]
    assert rows["multilevel"][0] < rows["blocks"][0]
    # random: terrible cut (the locality penalty the paper avoids)
    assert rows["random"][0] > 3 * rows["multilevel"][0]
    # comm volume tracks the cut ordering for multilevel vs random
    assert rows["multilevel"][1] < rows["random"][1]


def test_spectral_bisection_quality(case, benchmark):
    dual = DualGraph(case.mesh)
    g = dual.comp_graph()
    side = benchmark(lambda: spectral_bisect(g, seed=0))
    from repro.partition import multilevel_bisect

    ml = multilevel_bisect(g, 0.5, seed=0)
    cut_sp = edgecut(g, side)
    cut_ml = edgecut(g, ml)
    print(f"\n  spectral cut = {cut_sp}, multilevel cut = {cut_ml}")
    assert imbalance(g, side, 2) <= 1.2
    # spectral is a credible baseline: within a small factor of multilevel
    assert cut_sp <= 3 * cut_ml
