"""Shared fixtures for the reproduction benchmarks.

Every bench regenerates one table or figure of the paper's §5 and asserts
its *shape* claims (who wins, by roughly what factor, where crossovers
fall).  ``REPRO_BENCH_RESOLUTION`` controls the mesh size (default 6,
≈ 2.6k elements, keeps the full suite around a few minutes; 17 is
paper-scale).  Run with ``-s`` to see the regenerated rows/series.
"""

import os

import pytest

# src/ comes from pyproject.toml's pythonpath = ["src"] — same path setup
# as the unit tests and scripts/_bootstrap.py, no per-conftest sys.path hack

RESOLUTION = int(os.environ.get("REPRO_BENCH_RESOLUTION", "6"))


@pytest.fixture(scope="session")
def resolution():
    return RESOLUTION


@pytest.fixture(scope="session")
def case(resolution):
    from repro.experiments import make_case

    return make_case(resolution)
