"""Figure 6 — anatomy of execution time: adaption vs partitioning vs
reassignment vs remapping across processor counts for the three
strategies.  The anatomy is rendered from tracer spans
(:mod:`repro.obs`), not from ad-hoc report fields, so the same numbers
appear in exported JSONL/Chrome traces.

Paper claims the bench asserts:
* repartitioning time depends essentially on the initial problem size —
  the three strategies' partitioning curves are nearly identical — and is
  almost independent of P, with a shallow interior minimum (at ~16 for
  the paper's 61k-vertex dual graph; the model puts it at
  sqrt(C_work·n·t_work / (C_msg·t_setup)) for an n-vertex graph);
* remapping time gradually decreases with more processors;
* at large P no single module is a runaway bottleneck (the framework
  "remains viable on a large number of processors").
"""

import math

from repro.experiments.figures import fig6_anatomy
from repro.experiments.report import format_series
from repro.partition.parallel_model import C_MSG, C_WORK, partition_time
from repro.parallel.machine import SP2_1997


def test_fig6_series(resolution, case, benchmark):
    from repro.partition.multilevel import multilevel_kway
    from repro.core.dualgraph import DualGraph

    dual = DualGraph(case.mesh)
    benchmark(lambda: multilevel_kway(dual.comp_graph(), 16, seed=0))

    data = fig6_anatomy(resolution)
    print()
    for name, phases in data.items():
        for phase, series in phases.items():
            print(f"  {name:7s} {phase:12s}: {format_series(series, '8.4f')}")

    # partitioning curves identical across strategies (same dual graph)
    base = data["Real_1"]["partitioning"]
    for name in ("Real_2", "Real_3"):
        assert data[name]["partitioning"] == base

    # adaption time falls with P for every strategy
    for name, phases in data.items():
        a = phases["adaption"]
        assert a[2] > a[8] > a[64]

    # the anatomy comes from tracer spans: the per-phase series must sum
    # to the step's total virtual time (no phase silently dropped, and no
    # wall-clock contamination)
    from repro.experiments.sweep import run_step

    for name in ("Real_1", "Real_2", "Real_3"):
        for p in (2, 8, 64):
            rep = run_step(resolution, name, "before", p)
            span_sum = sum(ph[p] for ph in data[name].values())
            assert abs(span_sum - rep.total_time) < 1e-9, (name, p)
            root = rep.spans[0]
            assert root.name == "adapt_step"
            assert abs(root.v_duration - rep.total_time) < 1e-9, (name, p)

    # the partition-time model has its interior minimum where predicted
    n = case.mesh.ne
    p_star = math.sqrt(C_WORK * n * SP2_1997.t_work / (C_MSG * SP2_1997.t_setup))
    times = {p: partition_time(n, p) for p in range(1, 129)}
    p_min = min(times, key=times.get)
    assert 0.4 * p_star <= p_min <= 2.5 * p_star
    # paper-scale check: a ~61k dual graph bottoms out near P = 16
    paper_times = {p: partition_time(60968, p) for p in range(1, 129)}
    p_min_paper = min(paper_times, key=paper_times.get)
    assert 10 <= p_min_paper <= 24


def test_no_module_is_a_runaway_bottleneck(resolution, benchmark):
    """The paper's viability claim — "none of the individual modules will
    be a bottleneck" on large P — means no phase *grows without bound* as
    processors are added: adaption falls, partitioning stays within a
    small factor of its own minimum, remapping falls.  (Cross-phase ratios
    are scale-dependent: at the paper's 61k-element scale all three land
    at 0.55/0.58/0.89 s on P=64; on a small mesh the P-proportional
    partitioning comm floor dominates — which the model also predicts.)"""
    benchmark(lambda: partition_time(60968, 64))
    data = fig6_anatomy(resolution)
    for name, phases in data.items():
        a = phases["adaption"]
        assert a[64] < a[2], (name, "adaption must shrink with P")
        p = phases["partitioning"]
        assert p[64] <= 20 * min(p.values()), (name, "partitioning bounded")
        r = {k: v for k, v in phases["remapping"].items() if v > 0}
        if r:
            assert r[max(r)] <= 3 * min(r.values()), (name, "remap bounded")
    # at paper scale the model puts partitioning at the paper's magnitude
    assert 0.3 < partition_time(60968, 64) < 1.2
