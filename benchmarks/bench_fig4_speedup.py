"""Figure 4 — speedup of the parallel mesh adaptor when data is remapped
either after or before mesh refinement.

Paper claims the bench asserts:
* remapping *before* refinement gives a higher speedup for every strategy
  at large P (an improvement of up to 2.6x in refinement speedup);
* the relative benefit is largest for Real_1 (smallest refinement region:
  9.3x -> 23.9x on 64 processors in the paper);
* Real_3 with remap-before shows the best absolute speedup (52.5x on 64
  processors in the paper);
* speedups grow monotonically at small-to-moderate P.
"""

from repro.experiments.figures import fig4_speedup
from repro.experiments.report import format_series
from repro.experiments.sweep import run_step


def test_fig4_series(resolution, benchmark):
    benchmark(
        lambda: run_step.__wrapped__(resolution, "Real_1", "before", 64)
    )

    data = fig4_speedup(resolution)
    print()
    for name, modes in data.items():
        for mode, series in modes.items():
            print(f"  {name:7s} {mode:6s}: {format_series(series, '6.1f')}")

    for name, modes in data.items():
        # before beats after at the largest processor counts
        for p in (32, 64):
            assert modes["before"][p] > modes["after"][p], (name, p)
        # speedup rises through moderate P
        s = modes["before"]
        assert s[2] < s[8] < s[32]

    # biggest relative improvement for the most localized strategy
    gain = {
        name: modes["before"][64] / modes["after"][64]
        for name, modes in data.items()
    }
    assert gain["Real_1"] >= gain["Real_3"]
    assert gain["Real_1"] > 1.5  # paper: ~2.6x
    # best absolute speedup: Real_3 with remap-before
    best = data["Real_3"]["before"][64]
    assert best >= data["Real_1"]["before"][64]
    assert best > 10.0
