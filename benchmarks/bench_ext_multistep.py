"""Extension — repeated refinement (paper §5 closing claim).

"It is important to realize that the results shown in Figs. 7 and 8 are
for a single refinement step.  With repeated refinement, the gains
realized with load balancing may be even more significant."

The bench runs three consecutive adapt steps of a localized strategy with
and without the load balancer and compares cumulative modelled solver
time: the balanced run's advantage after three steps must exceed its
advantage after one.
"""

import numpy as np

from repro.core import CostModel, LoadBalancedAdaptiveSolver
from repro.parallel.machine import SP2_1997


def _cumulative_solver_times(case, balance: bool, steps: int = 3, nproc: int = 16):
    solver = LoadBalancedAdaptiveSolver(
        case.mesh,
        nproc,
        machine=SP2_1997,
        cost_model=CostModel(machine=SP2_1997),
        # a threshold no run can exceed disables the balancer entirely
        imbalance_threshold=1.0 if balance else float(nproc),
    )
    times = []
    elem_err = case.elem_error
    for _ in range(steps):
        from repro.adapt.marking import target_elements_by_fraction

        # elements inherit their refinement-tree root's feature intensity,
        # so the same localized region keeps refining step after step
        err_now = elem_err[solver.adaptive.forest.root_of_elem]
        mask = target_elements_by_fraction(solver.adaptive.mesh, err_now, 0.10)
        solver.adapt_step(edge_mask=mask)
        times.append(solver.solver_phase_time())
    return np.array(times)


def test_gains_compound_over_steps(case, benchmark):
    balanced = _cumulative_solver_times(case, balance=True)
    unbalanced = _cumulative_solver_times(case, balance=False)
    benchmark(lambda: _cumulative_solver_times(case, balance=True, steps=1))

    ratio_per_step = unbalanced / balanced
    cum_ratio = unbalanced.cumsum() / balanced.cumsum()
    print(f"\n  per-step solver-time ratio (unbal/bal): "
          f"{np.round(ratio_per_step, 2).tolist()}")
    print(f"  cumulative ratio after each step:       "
          f"{np.round(cum_ratio, 2).tolist()}")

    # balancing always helps ...
    assert np.all(ratio_per_step >= 1.0)
    # ... and the advantage after three steps beats the single-step one
    assert cum_ratio[-1] > cum_ratio[0]
    # imbalance compounds: the last unbalanced step is worse than the first
    assert ratio_per_step[-1] > ratio_per_step[0]
