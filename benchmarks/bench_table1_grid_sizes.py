"""Table 1 — grid sizes for the three refinement strategies.

Paper (60,968-element UH-1H mesh):

            Vertices  Elements   Edges  BdyFaces
  Initial     13,967    60,968  78,343    6,818
  Real_1      17,880    82,489 104,209    7,682
  Real_2      39,332   201,780 247,115   12,008
  Real_3      61,161   321,841 391,233   16,464

The bench regenerates the same rows on the synthetic rotor mesh and
benchmarks the mark+subdivide kernel of Real_2.
"""

from repro.adapt.adaptor import AdaptiveMesh
from repro.experiments import REAL_FRACTIONS
from repro.experiments.report import format_table1
from repro.experiments.table1 import grid_sizes


def test_table1_rows(case, benchmark):
    def real2_refinement():
        am = AdaptiveMesh(case.mesh, solution=case.solution)
        marking = am.mark(edge_mask=case.marking_mask("Real_2"))
        am.refine(marking)
        return am

    benchmark(real2_refinement)

    rows = grid_sizes(case)
    print("\n" + format_table1(rows))

    init = rows["Initial"]
    # strategy ordering: more marking -> strictly larger grids
    for col in ("vertices", "elements", "edges"):
        assert (
            init[col]
            < rows["Real_1"][col]
            < rows["Real_2"][col]
            < rows["Real_3"][col]
        )
    # growth factors near the clustered ideal 7f+1 (paper: 1.35/3.31/5.28)
    for name, frac in REAL_FRACTIONS.items():
        g = rows[name]["elements"] / init["elements"]
        ideal = 7 * frac + 1
        assert ideal <= g <= 1.45 * ideal, f"{name}: G={g:.2f} vs ideal {ideal:.2f}"
    # boundary faces only grow (coarse boundary faces split 1:4 at most)
    assert rows["Real_3"]["bdy_faces"] >= init["bdy_faces"]
