"""Figure 7 — maximum impact of load balancing on flow-solver times.

The closed form: improvement = min(8, P(G-1)+1)/G for growth factor G.
Paper curves (G = 1.353, 3.310, 5.279):
* Real_1 saturates at 5.91 for P >= 20;
* Real_2 saturates at 2.42 for P >= 4;
* Real_3 saturates at 1.52 for P >= 2;
* maximum imbalance is attained faster as G increases, but the saturated
  value decreases;
* no improvement at G = 1 or G = 8.

The bench verifies the formula against an explicit worst-case load
construction and regenerates the curves.
"""

import numpy as np
import pytest

from repro.experiments.figures import PAPER_G, fig7_max_improvement, max_improvement
from repro.experiments.report import format_series


def _worst_case_ratio(p: int, g: float, n: int = 10_000) -> float:
    """Build the §5 worst case explicitly: all refinement 1:8 on a subset
    of processors, the rest untouched; return max-load / balanced-load."""
    per = n // p
    n = per * p
    refined = round(n * (g - 1.0) / 7.0)  # elements that went 1-to-8
    loads = np.full(p, per, dtype=np.float64)
    remaining = refined
    for i in range(p):
        take = min(per, remaining)
        loads[i] += 7 * take
        remaining -= take
    balanced = n * g / p
    return float(loads.max() / balanced)


def test_fig7_curves(benchmark):
    benchmark(lambda: fig7_max_improvement(None))

    data = fig7_max_improvement(None)
    print()
    for name, series in data.items():
        print(f"  {name:7s}: {format_series(series, '6.2f')}")

    # saturation levels and onsets from the paper
    assert data["Real_1"][64] == pytest.approx(5.91, abs=0.01)
    assert data["Real_2"][64] == pytest.approx(2.42, abs=0.01)
    assert data["Real_3"][64] == pytest.approx(1.52, abs=0.01)
    assert data["Real_1"][16] < data["Real_1"][32]  # saturates at P>=20
    assert data["Real_2"][4] == pytest.approx(data["Real_2"][64])  # P>=4
    assert data["Real_3"][2] == pytest.approx(data["Real_3"][64])  # P>=2

    # higher G saturates sooner but lower
    g1, g3 = PAPER_G["Real_1"], PAPER_G["Real_3"]
    sat1 = 7.0 / (g1 - 1.0)
    sat3 = 7.0 / (g3 - 1.0)
    assert sat3 < sat1
    assert max(data["Real_3"].values()) < max(data["Real_1"].values())

    # boundary cases: no improvement at G=1 or G=8
    for p in (2, 16, 64):
        assert max_improvement(p, 1.0) == pytest.approx(1.0)
        assert max_improvement(p, 8.0) == pytest.approx(1.0)


@pytest.mark.parametrize("g", sorted(PAPER_G.values()))
@pytest.mark.parametrize("p", [2, 4, 8, 16, 32, 64])
def test_formula_matches_worst_case_construction(p, g, benchmark):
    analytic = benchmark(lambda: max_improvement(p, g))
    constructed = _worst_case_ratio(p, g)
    assert constructed == pytest.approx(analytic, rel=0.02)
