"""Table 2 — processor reassignment: optimal MWBG vs heuristic MWBG vs
optimal BMCM on the Real_2 strategy.

Paper findings the bench asserts:
* the heuristic's total movement is within a few % of optimal MWBG
  ("the reduction in the amount of total data movement is insignificant");
* the heuristic is faster than the optimal MWBG solve, which is faster
  than the BMCM solve;
* BMCM's *total* movement is larger (it optimises the bottleneck instead);
* BMCM's bottleneck (MaxV) is no worse than either MWBG solution's;
* reassignment times grow with P but stay tiny at P = 64.
"""

import numpy as np

from repro.core.reassign import heuristic_mwbg, optimal_bmcm, optimal_mwbg
from repro.core.metrics import remap_stats
from repro.experiments.report import format_table2
from repro.experiments.table2 import mapper_comparison


def _similarity_at_64(case):
    from repro.adapt.adaptor import AdaptiveMesh
    from repro.core.dualgraph import DualGraph
    from repro.core.similarity import similarity_matrix
    from repro.partition.multilevel import multilevel_kway
    from repro.partition.repartition import repartition

    am = AdaptiveMesh(case.mesh)
    marking = am.mark(edge_mask=case.marking_mask("Real_2"))
    wcomp_pred, _ = am.predicted_weights(marking)
    dual = DualGraph(case.mesh)
    old = multilevel_kway(dual.comp_graph(), 64, seed=0)
    new = repartition(dual.graph.with_vwgt(wcomp_pred), 64, old, seed=0)
    return similarity_matrix(old, new, am.wremap(), 64)


def test_table2_rows(case, benchmark):
    S = _similarity_at_64(case)
    benchmark(lambda: heuristic_mwbg(S))

    rows = mapper_comparison(case)
    print("\n" + format_table2(rows))

    by = {(r.nproc, r.method): r for r in rows}
    procs = sorted({r.nproc for r in rows})
    for p in procs:
        opt, heu, bmc = by[p, "OptMWBG"], by[p, "HeuMWBG"], by[p, "OptBMCM"]
        # TotalV optimality ordering, heuristic within 2x (Corollary)
        assert opt.total_elems <= heu.total_elems
        if opt.total_elems > 0:
            assert heu.total_elems <= 2 * opt.total_elems
            # in practice, nearly identical (paper: "insignificant")
            assert heu.total_elems <= 1.15 * opt.total_elems
        # BMCM trades total volume for the bottleneck
        assert bmc.total_elems >= opt.total_elems
        # MaxV optimality: BMCM's bottleneck no worse than the others'
        assert bmc.max_sent_recv <= opt.max_sent_recv
        assert bmc.max_sent_recv <= heu.max_sent_recv

    # timing ordering at the largest P (paper: heuristic ~an order faster)
    p = procs[-1]
    assert by[p, "HeuMWBG"].reassign_seconds <= 5 * by[p, "OptMWBG"].reassign_seconds
    assert by[p, "OptBMCM"].reassign_seconds >= by[p, "OptMWBG"].reassign_seconds
    # heuristic stays very fast even at P=64 (paper: 0.0088s on the SP2)
    assert by[p, "HeuMWBG"].reassign_seconds < 0.05


def test_bmcm_bottleneck_optimality_on_instance(case, benchmark):
    """The BMCM solve is exact: no permutation has a smaller bottleneck."""
    S = _similarity_at_64(case)
    assignment = benchmark(lambda: optimal_bmcm(S))
    st = remap_stats(S, assignment)
    # spot-check optimality against the MWBG assignments
    for other in (optimal_mwbg(S), heuristic_mwbg(S)):
        assert st.c_max <= remap_stats(S, other).c_max
    # bottleneck cost is bounded by the heaviest row/col sums
    assert st.c_max <= max(int(S.sum(axis=1).max()), int(S.sum(axis=0).max()))
    assert np.array_equal(np.sort(assignment), np.arange(S.shape[0]))
