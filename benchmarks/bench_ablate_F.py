"""Ablation — F partitions per processor (paper §4.3).

"The rationale behind allowing multiple partitions per processor is that
performing data mapping at a finer granularity reduces the volume of data
movement at the expense of partitioning and processor reassignment times."
The bench maps the same adapted weights with F = 1, 2, 4 on 8 processors
and checks that finer granularity never moves more data, while the
reassignment problem grows as F·P.
"""

import time

import numpy as np

from repro.core.metrics import remap_stats
from repro.core.reassign import optimal_mwbg
from repro.core.similarity import similarity_matrix
from repro.partition.multilevel import multilevel_kway
from repro.partition.repartition import repartition


def _movement_with_F(case, F, nproc=8):
    from repro.adapt.adaptor import AdaptiveMesh
    from repro.core.dualgraph import DualGraph

    am = AdaptiveMesh(case.mesh)
    marking = am.mark(edge_mask=case.marking_mask("Real_2"))
    wcomp_pred, _ = am.predicted_weights(marking)
    dual = DualGraph(case.mesh)
    old_proc = multilevel_kway(dual.comp_graph(), nproc, seed=0)
    npart = F * nproc
    new_part = repartition(
        dual.graph.with_vwgt(wcomp_pred), npart, old_proc * F, seed=0
    )
    S = similarity_matrix(old_proc, new_part, am.wremap(), nproc, npart)
    t0 = time.perf_counter()
    assignment = optimal_mwbg(S, F=F)
    dt = time.perf_counter() - t0
    st = remap_stats(S, assignment)
    new_proc = assignment[new_part]
    assert new_proc.max() < nproc
    return st, dt


def test_finer_granularity_moves_less(case, benchmark):
    st1, _ = _movement_with_F(case, 1)
    benchmark(lambda: _movement_with_F(case, 2))
    st2, t2 = _movement_with_F(case, 2)
    st4, t4 = _movement_with_F(case, 4)

    print(
        f"\n  F=1: moved {st1.c_total:6d} in {st1.n_total:3d} sets"
        f"\n  F=2: moved {st2.c_total:6d} in {st2.n_total:3d} sets "
        f"(reassign {t2 * 1e6:.0f} us)"
        f"\n  F=4: moved {st4.c_total:6d} in {st4.n_total:3d} sets "
        f"(reassign {t4 * 1e6:.0f} us)"
    )

    # finer granularity: data movement does not grow (usually shrinks)
    assert st2.c_total <= 1.05 * st1.c_total
    assert st4.c_total <= 1.05 * st1.c_total
    # every processor still ends up with F unique partitions -> already
    # checked inside _movement_with_F via the fold-back assertion
    total = case.mesh.ne  # wremap before subdivision sums to ne
    for st in (st1, st2, st4):
        assert 0 <= st.c_total <= total
