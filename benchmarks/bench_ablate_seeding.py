"""Ablation — seeded repartitioning vs partitioning from scratch.

Paper §4.2: parallel MeTiS "uses the previous partition as the initial
guess for the repartitioning", reducing remapping cost.  The bench
measures exactly that: with the same new weights, the seeded repartitioner
must move far fewer dual-graph vertices than a fresh partition, while
achieving comparable balance.
"""

import numpy as np

from repro.partition.multilevel import multilevel_kway
from repro.partition.quality import imbalance
from repro.partition.repartition import repartition


def _weighted_dual(case):
    from repro.adapt.adaptor import AdaptiveMesh
    from repro.core.dualgraph import DualGraph

    am = AdaptiveMesh(case.mesh)
    marking = am.mark(edge_mask=case.marking_mask("Real_2"))
    wcomp_pred, _ = am.predicted_weights(marking)
    dual = DualGraph(case.mesh)
    return dual.graph.with_vwgt(wcomp_pred), dual


def test_seeding_reduces_movement(case, benchmark):
    g, dual = _weighted_dual(case)
    p = 16
    old = multilevel_kway(dual.comp_graph(), p, seed=0)

    seeded = benchmark(lambda: repartition(g, p, old, seed=1))
    fresh = multilevel_kway(g, p, seed=1)

    moved_seeded = int((seeded != old).sum())
    moved_fresh = int((fresh != old).sum())
    print(
        f"\n  moved (seeded) = {moved_seeded}/{g.n}"
        f"\n  moved (fresh)  = {moved_fresh}/{g.n}"
        f"\n  imbalance: old={imbalance(g, old, p):.3f} "
        f"seeded={imbalance(g, seeded, p):.3f} fresh={imbalance(g, fresh, p):.3f}"
    )

    assert moved_seeded < moved_fresh
    assert moved_seeded < 0.5 * moved_fresh  # the saving is substantial
    # seeded balance comparable to fresh (within the refiner's tolerance)
    assert imbalance(g, seeded, p) <= max(1.10, 1.3 * imbalance(g, fresh, p))
    # and better than doing nothing
    assert imbalance(g, seeded, p) < imbalance(g, old, p)
