"""Figure 5 — remapping times when data is remapped after vs before mesh
refinement.

Paper claims the bench asserts:
* remapping before subdivision is significantly cheaper for every strategy
  (the largest case drops to less than a third: 3.71s -> 1.03s at P=64);
* remapping time trends downward as processors are added (more processors
  share the transfer work even though total volume grows);
* the volume of data moved before refinement is strictly smaller than
  after, whenever both runs actually remap.
"""

from repro.core.remap import execute_remap
from repro.experiments.figures import fig5_remap_times
from repro.experiments.report import format_series
from repro.experiments.sweep import run_step


def test_fig5_series(resolution, benchmark):
    # benchmark the physical migration kernel on the Real_2 @ 64 movement
    rep = run_step(resolution, "Real_2", "before", 64)
    data = fig5_remap_times(resolution)
    print()
    for name, modes in data.items():
        for mode, series in modes.items():
            print(f"  {name:7s} {mode:6s}: {format_series(series, '8.4f')}")

    if rep.accepted:
        import numpy as np

        n = rep.remap.new_owner.shape[0]
        rng = np.random.default_rng(0)
        old = rng.integers(0, 64, n)
        benchmark(
            lambda: execute_remap(old, rep.remap.new_owner, np.ones(n, int), 64)
        )

    for name, modes in data.items():
        for p, t_after in modes["after"].items():
            t_before = modes["before"][p]
            if t_after > 0 and t_before > 0:
                assert t_before < t_after, (name, p)
        # at P=64 the saving is large (paper: >3x on the largest case)
        if modes["after"][64] > 0:
            assert modes["after"][64] / max(modes["before"][64], 1e-12) > 1.5
        # falling trend across the sweep: the last point is well below the
        # early-P peak
        peak = max(modes["after"].values())
        if peak > 0:
            assert modes["after"][64] <= peak


def test_moved_volume_before_vs_after(resolution, benchmark):
    benchmark(lambda: run_step(resolution, 'Real_1', 'before', 8))
    for name in ("Real_1", "Real_2", "Real_3"):
        ra = run_step(resolution, name, "after", 64)
        rb = run_step(resolution, name, "before", 64)
        if ra.accepted and rb.accepted:
            assert rb.remap.elements_moved < ra.remap.elements_moved
