"""Extension — the combined TotalV+MaxV objective (paper §4.4 future work).

"In general, the objective function may need to use a combination of both
metrics to effectively incorporate all related costs.  This issue will be
addressed in future work."

The bench sweeps the mixing weight λ and checks the trade-off is real and
monotone at the ends: λ=0 recovers the TotalV optimum, λ=1 the MaxV
optimum, and intermediate λ interpolate (C_total non-decreasing in λ,
C_max non-increasing), with the combined cost never worse than either
endpoint assignment.
"""

import numpy as np

from repro.core.combined import combined_cost, combined_reassign
from repro.core.metrics import remap_stats
from repro.core.reassign import optimal_bmcm, optimal_mwbg


def _similarity(case, p=24):
    from repro.adapt.adaptor import AdaptiveMesh
    from repro.core.dualgraph import DualGraph
    from repro.core.similarity import similarity_matrix
    from repro.partition.multilevel import multilevel_kway
    from repro.partition.repartition import repartition

    am = AdaptiveMesh(case.mesh)
    marking = am.mark(edge_mask=case.marking_mask("Real_2"))
    wcomp_pred, _ = am.predicted_weights(marking)
    dual = DualGraph(case.mesh)
    old = multilevel_kway(dual.comp_graph(), p, seed=0)
    new = repartition(dual.graph.with_vwgt(wcomp_pred), p, old, seed=0)
    return similarity_matrix(old, new, am.wremap(), p)


def test_lambda_sweep(case, benchmark):
    S = _similarity(case)
    benchmark(lambda: combined_reassign(S, lam=0.5, max_sweeps=2))

    lams = [0.0, 0.25, 0.5, 0.75, 1.0]
    rows = []
    for lam in lams:
        m = combined_reassign(S, lam=lam)
        st = remap_stats(S, m)
        rows.append((lam, st.c_total, st.c_max))
    print("\n  lambda  C_total   C_max")
    for lam, ct, cm in rows:
        print(f"  {lam:6.2f}  {ct:7d}  {cm:6d}")

    # endpoints match the exact single-metric optima
    st0 = remap_stats(S, optimal_mwbg(S))
    st1 = remap_stats(S, optimal_bmcm(S))
    assert rows[0][1] == st0.c_total
    assert rows[-1][2] == st1.c_max
    # the combined solution is never worse than either endpoint under J
    for lam in (0.25, 0.5, 0.75):
        m = combined_reassign(S, lam=lam)
        j = combined_cost(S, m, lam)
        assert j <= combined_cost(S, optimal_mwbg(S), lam) + 1e-9
        assert j <= combined_cost(S, optimal_bmcm(S), lam) + 1e-9
    # trade-off direction across the sweep
    assert rows[0][1] <= rows[-1][1]  # C_total grows toward the MaxV end
    assert rows[-1][2] <= rows[0][2]  # C_max shrinks toward the MaxV end


def test_tradeoff_on_adversarial_instance(benchmark):
    """The seeded repartitioner keeps S diagonal-heavy, which often makes
    one assignment optimal for both metrics; a scattered S (e.g. after a
    fresh partition with no seeding) exposes the genuine trade."""
    rng = np.random.default_rng(5)
    S = rng.integers(0, 60, size=(10, 10)).astype(np.int64)
    benchmark(lambda: combined_reassign(S, lam=0.5, max_sweeps=2))
    st_tot = remap_stats(S, combined_reassign(S, lam=0.0))
    st_max = remap_stats(S, combined_reassign(S, lam=1.0))
    print(f"\n  adversarial: TotalV-opt (C_total={st_tot.c_total}, "
          f"C_max={st_tot.c_max})  MaxV-opt (C_total={st_max.c_total}, "
          f"C_max={st_max.c_max})")
    assert st_tot.c_total <= st_max.c_total
    assert st_max.c_max <= st_tot.c_max
    # the two metrics genuinely disagree on this instance
    assert st_tot.c_total < st_max.c_total or st_max.c_max < st_tot.c_max
