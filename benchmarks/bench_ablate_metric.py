"""Ablation — TotalV vs MaxV as the remapping cost metric (paper §4.4–4.5).

"Note that TotalV does not consider the execution times of bottleneck
processors while MaxV ignores bandwidth contention."  The bench quantifies
the trade on the Real_2 similarity matrix: the TotalV-optimal mapper gives
the smallest total movement, the MaxV-optimal mapper the smallest
bottleneck, and each loses on the other's objective.
"""

from repro.core.cost import CostModel
from repro.core.metrics import remap_stats
from repro.core.reassign import optimal_bmcm, optimal_mwbg
from repro.parallel.machine import SP2_1997


def _similarity(case, p=32):
    from repro.adapt.adaptor import AdaptiveMesh
    from repro.core.dualgraph import DualGraph
    from repro.core.similarity import similarity_matrix
    from repro.partition.multilevel import multilevel_kway
    from repro.partition.repartition import repartition

    am = AdaptiveMesh(case.mesh)
    marking = am.mark(edge_mask=case.marking_mask("Real_2"))
    wcomp_pred, _ = am.predicted_weights(marking)
    dual = DualGraph(case.mesh)
    old = multilevel_kway(dual.comp_graph(), p, seed=0)
    new = repartition(dual.graph.with_vwgt(wcomp_pred), p, old, seed=0)
    return similarity_matrix(old, new, am.wremap(), p)


def test_metric_tradeoff(case, benchmark):
    S = _similarity(case)
    benchmark(lambda: optimal_mwbg(S))

    st_tot = remap_stats(S, optimal_mwbg(S))
    st_max = remap_stats(S, optimal_bmcm(S))
    print(
        f"\n  TotalV-opt: C_total={st_tot.c_total:6d}  C_max={st_tot.c_max:6d}"
        f"\n  MaxV-opt  : C_total={st_max.c_total:6d}  C_max={st_max.c_max:6d}"
    )

    assert st_tot.c_total <= st_max.c_total  # TotalV wins its own metric
    assert st_max.c_max <= st_tot.c_max  # MaxV wins its own metric

    # both metrics price the remap consistently in the cost model
    for metric, st in (("totalv", st_tot), ("maxv", st_max)):
        cm = CostModel(machine=SP2_1997, metric=metric)
        assert cm.redistribution_cost(st) > 0
    # MaxV's bottleneck price never exceeds the TotalV total price for the
    # same assignment (C_max <= C_total, N_max <= N_total)
    cm_tot = CostModel(machine=SP2_1997, metric="totalv")
    cm_max = CostModel(machine=SP2_1997, metric="maxv")
    assert cm_max.redistribution_cost(st_tot) <= cm_tot.redistribution_cost(st_tot)
