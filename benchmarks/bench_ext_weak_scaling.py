"""Extension — weak scaling of the VM scheduler itself.

The paper's evaluation stops at SP2 scale (64 processors); the
extreme-scale AMR line of work (Schornbaum & Rüde, PAPERS.md) runs the
same adapt/balance cycle on 65k+ cores.  This bench prices the fig6-style
*execution phase* — compute, 4-neighbour halo exchange with
source-wildcard receives, convergence allreduce — at 1k/4k (and,
env-gated, 16k) virtual ranks, asserting the vectorized scheduler's two
headline claims: a 4096-rank cycle finishes in seconds, and the
optimized path beats the eager reference scheduler by a wide margin
while producing bit-identical results.

``REPRO_BENCH_EXTREME=1`` additionally runs the 16384-rank point (about
half a minute including its reference shot).
"""

import os

import pytest

from repro.experiments.weak_scaling import (
    grid_dims,
    grid_neighbours,
    halo_cycle,
    measure_point,
    measure_speedup,
)
from repro.kernels import reference_kernels
from repro.obs import Tracer, use_tracer, verify_makespans


def test_fig6_style_cycle_at_4096_completes_in_seconds():
    with use_tracer(Tracer()):
        pt = measure_point(4096)
    print(f"\n  P=4096: {pt.wall_seconds:.2f}s wall, {pt.ops:,} scheduler "
          f"ops, {pt.ops_per_second:,.0f} ops/s, "
          f"makespan {pt.makespan * 1e3:.1f} virtual ms")
    assert pt.wall_seconds < 10.0
    assert pt.rounds == 3
    assert pt.ops > 3 * 4096  # at least work + sends + recvs per round


def test_scheduler_beats_reference_at_1k_ranks():
    opt, ref, speedup = measure_speedup(1024, repeats=2)
    print(f"\n  P=1024: optimized {opt.wall_seconds:.3f}s, reference "
          f"{ref.wall_seconds:.3f}s -> {speedup:.2f}x")
    # identical modelled execution, whichever scheduler ran it
    assert opt.makespan == ref.makespan
    assert opt.total_messages == ref.total_messages
    assert opt.total_words == ref.total_words
    assert opt.ops == ref.ops
    # in-test floor with a wide noise margin; the tracked value (>= 5x at
    # 16k, ~4.5-5x at 1k on a quiet host) lives in BENCH_results.json
    assert speedup >= 2.5


def test_small_scale_parity_is_bitwise():
    """The two schedulers must agree bit-for-bit on the bench workload."""
    res_fast = halo_cycle(24)
    with reference_kernels():
        res_ref = halo_cycle(24)
    assert res_fast.returns == res_ref.returns
    assert res_fast.clocks == res_ref.clocks  # bit-identical clocks
    assert res_fast.makespan == res_ref.makespan
    assert res_fast.total_messages == res_ref.total_messages
    assert res_fast.total_words == res_ref.total_words
    assert res_fast.busy_per_rank == res_ref.busy_per_rank
    assert res_fast.idle_per_rank == res_ref.idle_per_rank
    assert res_fast.nodes == res_ref.nodes
    assert res_fast.msgs == res_ref.msgs


def test_causal_record_passes_makespan_identity():
    """The lazily materialized causal record must still satisfy the
    critical-path makespan identity the eager path guarantees."""
    tracer = Tracer()
    with use_tracer(tracer):
        halo_cycle(64)
    assert verify_makespans(tracer) == 1


def test_synthetic_grid_matches_exec_phase_shape():
    px, py = grid_dims(1024)
    assert px * py == 1024
    nbrs = grid_neighbours(64)
    assert all(1 <= len(n) <= 4 for n in nbrs)
    # neighbour relation is symmetric, like an SPL adjacency
    for r, out in enumerate(nbrs):
        for d in out:
            assert r in nbrs[d]


@pytest.mark.skipif(
    os.environ.get("REPRO_BENCH_EXTREME") != "1",
    reason="set REPRO_BENCH_EXTREME=1 for the 16k-rank point",
)
def test_extreme_scale_16k_ranks():
    opt, ref, speedup = measure_speedup(16384)
    print(f"\n  P=16384: optimized {opt.wall_seconds:.2f}s, reference "
          f"{ref.wall_seconds:.2f}s -> {speedup:.2f}x")
    assert opt.makespan == ref.makespan
    assert opt.wall_seconds < 30.0
    assert speedup >= 3.0
