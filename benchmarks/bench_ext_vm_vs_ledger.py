"""Extension — cross-validation of the two virtual-timing paths.

The framework times the marking/subdivision phases with the BSP cost
ledger (vectorized accounting), while ``repro.dist`` executes the same
phases as event-driven SPMD rank programs on the virtual machine.  Both
must tell the same story: same machine model, same work, so the measured
times should agree in trend and stay within a small factor of each other
(the VM resolves message timing exactly; the ledger batches per
superstep).
"""

import numpy as np

from repro.adapt.marking import propagate_markings
from repro.dist import decompose, parallel_mark
from repro.dist.refine_exec import parallel_refine
from repro.parallel import CostLedger, SP2_1997
from repro.partition import Graph, multilevel_kway


def _setup(case, nproc):
    mesh = case.mesh
    g = Graph.from_pairs(mesh.dual_pairs, mesh.ne)
    part = multilevel_kway(g, nproc, seed=0)
    locals_ = decompose(mesh, part, nproc)
    marks = case.marking_mask("Real_2")
    return mesh, part, locals_, marks


def test_marking_times_agree(case, benchmark):
    mesh, part, locals_, marks = _setup(case, 8)

    ledger = CostLedger(8, SP2_1997)
    serial = propagate_markings(mesh, marks, part=part, ledger=ledger)
    t_ledger = ledger.elapsed

    vm_result = benchmark(lambda: parallel_mark(mesh, locals_, marks))
    t_vm = vm_result.time_seconds

    print(f"\n  marking: ledger {t_ledger * 1e3:.2f} ms, "
          f"VM {t_vm * 1e3:.2f} ms (ratio {t_vm / t_ledger:.2f})")
    assert np.array_equal(vm_result.edge_marked, serial.edge_marked)
    # the two paths agree within an order of magnitude
    assert 0.1 < t_vm / t_ledger < 10.0


def test_both_paths_show_subdivision_imbalance(case, benchmark):
    """The skewed-vs-balanced subdivision-time gap must appear in both
    timing paths, with a comparable magnitude ratio."""
    mesh = case.mesh
    marking = benchmark(lambda: propagate_markings(mesh, case.marking_mask("Real_1")))
    cent = mesh.coords[mesh.elems].mean(axis=1)

    from repro.adapt.refine import subdivide
    from repro.core.evaluate import load_imbalance
    from repro.partition import rcb_partition

    # balanced-by-count partition (RCB) vs one aligned with the feature
    part_bal = rcb_partition(cent, np.ones(mesh.ne), 4)
    d = case.blade.distance(cent)
    part_skew = np.clip((d * 4 / d.max()).astype(np.int64), 0, 3)

    ratios = {}
    # ledger path
    t = {}
    for label, part in (("balanced", part_bal), ("skewed", part_skew)):
        ledger = CostLedger(4, SP2_1997)
        subdivide(mesh, marking, part=part, ledger=ledger)
        t[label] = ledger.elapsed
    ratios["ledger"] = t["skewed"] / t["balanced"]
    # VM path
    t = {}
    for label, part in (("balanced", part_bal), ("skewed", part_skew)):
        locals_ = decompose(mesh, part, 4)
        t[label] = parallel_refine(mesh, locals_, marking).time_seconds
    ratios["vm"] = t["skewed"] / t["balanced"]

    print(f"\n  skew/balance subdivision-time ratio: "
          f"ledger {ratios['ledger']:.2f}, VM {ratios['vm']:.2f}")
    # the skewed mapping concentrates children on few ranks -> slower
    # under BOTH timing paths; sanity-check the skew premise first
    from repro.adapt.patterns import NUM_CHILDREN

    w = NUM_CHILDREN[marking.patterns].astype(np.float64)
    assert load_imbalance(w, part_skew, 4) > load_imbalance(w, part_bal, 4)
    assert ratios["ledger"] > 1.1
    assert ratios["vm"] > 1.1
    # and the two paths agree on the size of the effect within 3x
    assert 1 / 3 < ratios["vm"] / ratios["ledger"] < 3.0
