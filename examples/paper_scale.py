#!/usr/bin/env python3
"""Paper-scale run: the key experiments on a ~59k-element rotor mesh.

The paper's UH-1H mesh has 60,968 tetrahedra; resolution 17 of the
synthetic rotor domain gives 58,956 — close enough that the partition-time
model's U-curve minimum lands at the paper's P ≈ 16 and the remapping /
partitioning / refinement times become comparable at large P, as in the
paper's Fig. 6.  Expect several minutes of wall time at full scale.

Run:  python examples/paper_scale.py [resolution=17] [nproc=64]
"""

import sys
import time

from repro.core import CostModel, LoadBalancedAdaptiveSolver
from repro.experiments import make_case
from repro.parallel import SP2_1997
from repro.partition.parallel_model import partition_time


def main(resolution: int = 17, nproc: int = 64) -> None:
    t0 = time.perf_counter()
    case = make_case(resolution)
    print(f"rotor mesh at resolution {resolution}: {case.mesh.ne} elements, "
          f"{case.mesh.nedges} edges (paper: 60,968 / 78,343)")
    print(f"modelled partition time on P={nproc}: "
          f"{partition_time(case.mesh.ne, nproc):.3f} s "
          f"(paper measured 0.58 s at their scale)")
    p_min = min(range(1, 129), key=lambda p: partition_time(case.mesh.ne, p))
    print(f"partition-time minimum at P = {p_min} (paper observed ~16)\n")

    for name in ("Real_1", "Real_2", "Real_3"):
        solver = LoadBalancedAdaptiveSolver(
            case.mesh, nproc, machine=SP2_1997,
            cost_model=CostModel(machine=SP2_1997), imbalance_threshold=1.0,
        )
        rep = solver.adapt_step(edge_mask=case.marking_mask(name))
        moved = rep.remap.elements_moved if rep.remap else 0
        print(f"{name}: G={rep.growth_factor:.3f}  "
              f"imbalance {rep.imbalance_before:.2f} -> {rep.imbalance_after:.2f}  "
              f"moved {moved} elements  "
              f"[mark {rep.marking_time:.3f}s part {rep.partition_time:.3f}s "
              f"remap {rep.remap_time:.3f}s subdiv {rep.subdivision_time:.3f}s]")
    print(f"\ntotal wall time: {time.perf_counter() - t0:.1f} s")


if __name__ == "__main__":
    res = int(sys.argv[1]) if len(sys.argv) > 1 else 13
    p = int(sys.argv[2]) if len(sys.argv) > 2 else 64
    main(res, p)
