#!/usr/bin/env python3
"""Compare the three processor-reassignment algorithms (paper Table 2).

Runs the Real_2 refinement strategy, repartitions, and hands the same
similarity matrix to the optimal MWBG, heuristic MWBG, and optimal BMCM
mappers, reporting movement volumes, bottleneck loads, and solve times —
plus a verification of Theorem 1's guarantee on this instance.

Run:  python examples/mapper_comparison.py [resolution]
"""

import sys

from repro.core import objective_value, remap_stats
from repro.experiments import make_case, mapper_comparison
from repro.experiments.report import format_table2


def main(resolution: int = 8) -> None:
    case = make_case(resolution)
    print(f"Rotor case: {case.mesh.ne} elements, {case.mesh.nedges} edges\n")

    rows = mapper_comparison(case, strategy="Real_2")
    print(format_table2(rows))

    # Theorem 1 spot check on the largest instance
    from repro.core.dualgraph import DualGraph
    from repro.core.reassign import heuristic_mwbg, optimal_mwbg
    from repro.core.similarity import similarity_matrix
    from repro.adapt.adaptor import AdaptiveMesh
    from repro.partition.multilevel import multilevel_kway
    from repro.partition.repartition import repartition

    am = AdaptiveMesh(case.mesh)
    marking = am.mark(edge_mask=case.marking_mask("Real_2"))
    wcomp_pred, _ = am.predicted_weights(marking)
    dual = DualGraph(case.mesh)
    old = multilevel_kway(dual.comp_graph(), 64, seed=0)
    new = repartition(dual.graph.with_vwgt(wcomp_pred), 64, old, seed=0)
    S = similarity_matrix(old, new, am.wremap(), 64)
    f_opt = objective_value(S, optimal_mwbg(S))
    f_heu = objective_value(S, heuristic_mwbg(S))
    print(f"\nTheorem 1 at P=64: heuristic retains {f_heu}, optimal {f_opt} "
          f"-> ratio {f_heu / max(f_opt, 1):.3f} (guaranteed > 0.5)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 8)
