#!/usr/bin/env python3
"""The paper's workload: adaptive rotor-acoustics computation.

Reproduces the experimental setting of §5 end to end: a graded rotor
domain with an analytic transonic-blade flow field, the actual Euler
solver advancing the solution between adaptions, and three consecutive
solve → mark → balance → subdivide cycles on 16 virtual processors.

Run:  python examples/rotor_acoustics.py [resolution]
"""

import sys

import numpy as np

from repro.core import CostModel, LoadBalancedAdaptiveSolver
from repro.mesh import rotor_domain_mesh
from repro.parallel import SP2_1997
from repro.solver import EulerSolver, rotor_acoustics_field
from repro.solver.indicator import speed_indicator


def main(resolution: int = 6) -> None:
    mesh, blade = rotor_domain_mesh(resolution=resolution, grading=2.0)
    q = rotor_acoustics_field(mesh.coords, blade, tip_mach=0.9)
    print(f"Rotor domain: {mesh.ne} tetrahedra; blade radius {blade.radius}")

    solver = LoadBalancedAdaptiveSolver(
        mesh,
        nproc=16,
        solution=q,
        machine=SP2_1997,
        cost_model=CostModel(machine=SP2_1997, n_adapt=50),
        imbalance_threshold=1.05,
    )

    for step in range(3):
        # --- flow solver phase (paper Fig. 1: runs N_adapt iterations) ---
        cur = solver.adaptive.mesh
        flow = EulerSolver(cur, solver.adaptive.solution)
        flow.run(5, cfl=0.4)
        solver.adaptive.solution = flow.q

        # --- error indicator from the flow solution -----------------------
        err = speed_indicator(cur, flow.q)

        # --- adaption + load balancing ------------------------------------
        report = solver.adapt_step(edge_error=err, refine_frac=0.08)
        status = (
            "remapped" if report.accepted
            else ("rejected" if report.repartition_triggered else "balanced")
        )
        print(
            f"step {step + 1}: {cur.ne:6d} -> {solver.adaptive.mesh.ne:6d} "
            f"elements (G={report.growth_factor:.2f}); "
            f"imbalance {report.imbalance_before:.2f} -> "
            f"{report.imbalance_after:.2f} [{status}]"
        )
        if report.accepted:
            print(
                f"         moved {report.remap.elements_moved} refinement-tree "
                f"nodes in {report.remap_time * 1e3:.1f} ms; "
                f"adaption {report.adaption_time * 1e3:.1f} ms"
            )

    w = solver.adaptive.wcomp()
    loads = np.bincount(solver.part, weights=w.astype(float), minlength=16)
    print(f"\nfinal per-processor element counts: "
          f"min {loads.min():.0f} / avg {loads.mean():.0f} / max {loads.max():.0f}")
    print(f"final solver imbalance: {solver.solver_imbalance():.3f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 6)
