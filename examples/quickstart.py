#!/usr/bin/env python3
"""Quickstart: one load-balanced mesh-adaption cycle in ~40 lines.

Builds a small tetrahedral box mesh, marks a corner region for refinement,
and runs the paper's full Fig.-1 cycle — marking, evaluation, parallel
repartitioning, processor reassignment, gain/cost decision, data remapping
before subdivision, and the subdivision itself — on 8 virtual processors.

Run:  python examples/quickstart.py [--trace-out run.jsonl] [--chrome-out run.json]

With ``--trace-out``/``--chrome-out`` the run's phase spans, virtual-machine
events, and counters are exported (see ``repro.obs``); the Chrome trace
opens directly in chrome://tracing or https://ui.perfetto.dev.
"""

import argparse

import numpy as np

from repro.core import CostModel, LoadBalancedAdaptiveSolver
from repro.mesh import box_mesh, edge_midpoints
from repro.obs import Tracer, export_chrome_trace, export_jsonl, validate_jsonl
from repro.parallel import SP2_1997


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace-out", default=None, metavar="PATH")
    ap.add_argument("--chrome-out", default=None, metavar="PATH")
    args = ap.parse_args()
    tracer = Tracer()
    mesh = box_mesh(4, 4, 4)
    print(f"Initial mesh: {mesh.ne} tetrahedra, {mesh.nedges} edges")

    solver = LoadBalancedAdaptiveSolver(
        mesh,
        nproc=8,
        machine=SP2_1997,
        cost_model=CostModel(machine=SP2_1997),
        reassigner="heuristic_mwbg",
        remap_when="before",  # the paper's key optimisation (§4.6)
        tracer=tracer,
    )
    print(f"Initial solver imbalance: {solver.solver_imbalance():.3f}")

    # an error indicator concentrated near the origin corner
    mid = edge_midpoints(mesh.coords, mesh.edges)
    error = 1.0 / (0.05 + np.linalg.norm(mid, axis=1))

    report = solver.adapt_step(edge_error=error, refine_frac=0.15)

    print(f"\nAfter one adapt/balance step:")
    print(f"  mesh grew {report.growth_factor:.2f}x "
          f"to {solver.adaptive.mesh.ne} elements")
    print(f"  predicted imbalance without balancing: "
          f"{report.imbalance_before:.2f}")
    print(f"  imbalance after balancing:             "
          f"{report.imbalance_after:.2f}")
    if report.accepted:
        d = report.decision
        print(f"  remap accepted: gain {d.gain * 1e3:.2f} ms "
              f"> cost {d.cost * 1e3:.2f} ms")
        print(f"  moved {report.remap.elements_moved} elements in "
              f"{report.remap.messages} messages "
              f"({report.remap_time * 1e3:.2f} ms on the virtual SP2)")
    phases = report.phase_times()  # per-phase anatomy from tracer spans
    print("  phase times (virtual seconds): "
          + ", ".join(f"{k} {v:.4f}" for k, v in phases.items()))

    if args.trace_out:
        n = export_jsonl(tracer, args.trace_out)
        validate_jsonl(args.trace_out)
        print(f"  wrote {n} JSONL trace records to {args.trace_out}")
    if args.chrome_out:
        n = export_chrome_trace(tracer, args.chrome_out)
        print(f"  wrote {n} Chrome-trace events to {args.chrome_out}")


if __name__ == "__main__":
    main()
