#!/usr/bin/env python3
"""Quickstart: one load-balanced mesh-adaption cycle in ~40 lines.

Builds a small tetrahedral box mesh, marks a corner region for refinement,
and runs the paper's full Fig.-1 cycle — marking, evaluation, parallel
repartitioning, processor reassignment, gain/cost decision, data remapping
before subdivision, and the subdivision itself — on 8 virtual processors.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CostModel, LoadBalancedAdaptiveSolver
from repro.mesh import box_mesh, edge_midpoints
from repro.parallel import SP2_1997


def main() -> None:
    mesh = box_mesh(4, 4, 4)
    print(f"Initial mesh: {mesh.ne} tetrahedra, {mesh.nedges} edges")

    solver = LoadBalancedAdaptiveSolver(
        mesh,
        nproc=8,
        machine=SP2_1997,
        cost_model=CostModel(machine=SP2_1997),
        reassigner="heuristic_mwbg",
        remap_when="before",  # the paper's key optimisation (§4.6)
    )
    print(f"Initial solver imbalance: {solver.solver_imbalance():.3f}")

    # an error indicator concentrated near the origin corner
    mid = edge_midpoints(mesh.coords, mesh.edges)
    error = 1.0 / (0.05 + np.linalg.norm(mid, axis=1))

    report = solver.adapt_step(edge_error=error, refine_frac=0.15)

    print(f"\nAfter one adapt/balance step:")
    print(f"  mesh grew {report.growth_factor:.2f}x "
          f"to {solver.adaptive.mesh.ne} elements")
    print(f"  predicted imbalance without balancing: "
          f"{report.imbalance_before:.2f}")
    print(f"  imbalance after balancing:             "
          f"{report.imbalance_after:.2f}")
    if report.accepted:
        d = report.decision
        print(f"  remap accepted: gain {d.gain * 1e3:.2f} ms "
              f"> cost {d.cost * 1e3:.2f} ms")
        print(f"  moved {report.remap.elements_moved} elements in "
              f"{report.remap.messages} messages "
              f"({report.remap_time * 1e3:.2f} ms on the virtual SP2)")
    print(f"  phase times (virtual seconds): "
          f"marking {report.marking_time:.4f}, "
          f"partitioning {report.partition_time:.4f}, "
          f"remapping {report.remap_time:.4f}, "
          f"subdivision {report.subdivision_time:.4f}")


if __name__ == "__main__":
    main()
