#!/usr/bin/env python3
"""Moving-feature adaption: refinement AND coarsening behind a blast wave.

An expanding spherical blast is tracked by the adaptor: each cycle refines
the current wave front and coarsens the mesh the wave has left behind
(exercising the sibling rule and reverse-order peeling), while the load
balancer keeps the moving refinement region distributed.  Also writes VTK
snapshots for visual inspection.

Run:  python examples/blast_wave.py [steps]
"""

import sys

import numpy as np

from repro.adapt import target_by_fraction
from repro.core import CostModel, LoadBalancedAdaptiveSolver
from repro.mesh import box_mesh, edge_midpoints
from repro.mesh.io import write_vtk
from repro.parallel import SP2_1997


def front_error(mesh, radius, width=0.08):
    """Error concentrated on a spherical shell of the given radius."""
    mid = edge_midpoints(mesh.coords, mesh.edges)
    r = np.linalg.norm(mid - 0.5, axis=1)
    return np.exp(-(((r - radius) / width) ** 2))


def main(steps: int = 4) -> None:
    mesh = box_mesh(5, 5, 5)
    solver = LoadBalancedAdaptiveSolver(
        mesh, nproc=8, machine=SP2_1997,
        cost_model=CostModel(machine=SP2_1997), imbalance_threshold=1.05,
    )
    radius = 0.15
    for step in range(steps):
        cur = solver.adaptive.mesh
        err = front_error(cur, radius)

        # coarsen what the front has left behind (low current error)
        coarsen_mask = err < 0.1
        rep_c = solver.adaptive.coarsen(coarsen_mask)

        # refine the current front through the full balanced cycle
        cur = solver.adaptive.mesh
        report = solver.adapt_step(
            edge_mask=target_by_fraction(front_error(cur, radius), 0.12)
        )

        print(
            f"step {step + 1}: r={radius:.2f}  "
            f"coarsened {rep_c.n_undone:4d} bisections "
            f"(-{rep_c.elements_removed} elements), refined to "
            f"{solver.adaptive.mesh.ne:6d} elements, "
            f"imbalance {report.imbalance_after:.2f} "
            f"[{'remapped' if report.accepted else 'kept'}]"
        )
        write_vtk(
            f"blast_step{step + 1}.vtk",
            solver.adaptive.mesh,
            cell_data={
                "proc": solver.elem_owner().astype(float),
            },
        )
        radius += 0.18
    print(f"\nwrote blast_step*.vtk with per-element processor assignment")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
