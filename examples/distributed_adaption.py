#!/usr/bin/env python3
"""The paper's §3 pipeline on actual distributed mesh data.

Initialization (scatter + SPL construction), the execution phase's
marking-propagation loop running as real SPMD rank programs on the virtual
machine, element migration to a rebalanced partition, subdivision, and the
finalization gather back to one global mesh.

The pipeline runs under an ambient tracer, so every virtual-machine
phase leaves its causal message DAG behind; at the end the example
checks the makespan identity (critical-path length == recorded makespan,
bit-for-bit, with a zero-slack rank in every run) and prints the
critical-path attribution across the three distributed phases.

``--backend`` selects the communicator backend executing the rank
programs (see ``repro.parallel.available_backends``).  On a real
backend (e.g. ``multiprocessing``) phase times are measured wall
seconds and the causal-identity check is skipped — only the virtual
machine records the message DAG — but every payload (the marking
fixpoint, the migrated element sets, the reassembled mesh) stays
identical to the virtual run.

Run:  python examples/distributed_adaption.py [--backend multiprocessing]
"""

import argparse

import numpy as np

from repro.adapt import AdaptiveMesh, mark_sphere, propagate_markings
from repro.dist import decompose, finalize, migrate, parallel_mark
from repro.mesh import box_mesh
from repro.obs import (
    Tracer,
    analyze,
    critical_path,
    format_critical_path,
    rank_stats,
    runs_from_tracer,
    use_tracer,
    verify_makespans,
)
from repro.partition import Graph, multilevel_kway, repartition

NPROC = 6


def main() -> None:
    from repro.parallel import available_backends

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--backend", default="virtual", choices=available_backends(),
        help="communicator backend executing the rank programs",
    )
    args = ap.parse_args()

    tracer = Tracer()
    with use_tracer(tracer):
        _pipeline(tracer, args.backend)
    if args.backend == "virtual":
        _check_causal_record(tracer)
    else:
        print(f"\n(causal-identity check skipped: the {args.backend!r} "
              "backend measures wall time and records no message DAG)")


def _pipeline(tracer: Tracer, backend: str = "virtual") -> None:
    unit = "virtual ms" if backend == "virtual" else "measured ms"
    mesh = box_mesh(4, 4, 4)
    dual = Graph.from_pairs(mesh.dual_pairs, mesh.ne)
    part = multilevel_kway(dual, NPROC, seed=0)

    # --- initialization phase -------------------------------------------------
    locals_ = decompose(mesh, part, NPROC)
    print(f"initialization: {mesh.ne} elements over {NPROC} ranks; "
          f"shared-object fractions "
          f"{[f'{lm.shared_fraction():.0%}' for lm in locals_]}")

    # --- execution phase: distributed marking propagation ----------------------
    marks = mark_sphere(mesh, (0.3, 0.3, 0.3), 0.35)
    with tracer.phase("marking"):
        result = parallel_mark(mesh, locals_, marks, backend=backend)
        tracer.advance(result.time_seconds)
    serial = propagate_markings(mesh, marks)
    assert np.array_equal(result.edge_marked, serial.edge_marked)
    print(f"marking: {marks.sum()} edges targeted -> "
          f"{result.edge_marked.sum()} after {result.iterations} propagation "
          f"rounds ({result.messages} SPL messages, "
          f"{result.time_seconds * 1e3:.2f} {unit})")

    # --- load balance for the predicted weights, then migrate -------------------
    am = AdaptiveMesh(mesh)
    marking = am.mark(edge_mask=result.edge_marked)
    wcomp_pred, _ = am.predicted_weights(marking)
    new_part = repartition(dual.with_vwgt(wcomp_pred), NPROC, part, seed=0)
    with tracer.phase("remap"):
        mig = migrate(mesh, locals_, new_part, backend=backend)
        tracer.advance(mig.seconds)
    print(f"migration: moved {mig.elements_moved} elements in "
          f"{mig.messages} messages ({mig.seconds * 1e3:.2f} {unit})")

    # --- subdivide, then gather one global mesh --------------------------------
    am.refine(marking)
    with tracer.phase("gather_scatter"):
        fin = finalize(mig.locals, backend=backend)
        tracer.advance(fin.gather_seconds)
    assert fin.mesh.ne == mesh.ne  # pre-subdivision grid reassembles exactly
    print(f"finalization: gathered {fin.mesh.ne} elements / {fin.mesh.nv} "
          f"vertices in {fin.gather_seconds * 1e3:.2f} {unit}")
    print(f"refined global mesh: {am.mesh.ne} elements "
          f"(G = {am.mesh.ne / mesh.ne:.2f})")


def _check_causal_record(tracer: Tracer) -> None:
    runs = runs_from_tracer(tracer)
    assert runs, "every distributed phase should leave a causal record"
    for run in runs:
        path = critical_path(run)
        assert path.length == run.makespan  # exact, not approximate
        assert any(st.slack == 0.0 for st in rank_stats(run, path))
    nruns = verify_makespans(tracer)
    print(f"\nmakespan identity verified on {nruns} vm runs "
          "(critical-path length == makespan, to the last bit)")
    print("\ncritical-path attribution:")
    print(format_critical_path(analyze(tracer), top=5))


if __name__ == "__main__":
    main()
