#!/usr/bin/env python3
"""The paper's §3 pipeline on actual distributed mesh data.

Initialization (scatter + SPL construction), the execution phase's
marking-propagation loop running as real SPMD rank programs on the virtual
machine, element migration to a rebalanced partition, subdivision, and the
finalization gather back to one global mesh.

Run:  python examples/distributed_adaption.py
"""

import numpy as np

from repro.adapt import AdaptiveMesh, mark_sphere, propagate_markings
from repro.dist import decompose, finalize, migrate, parallel_mark
from repro.mesh import box_mesh
from repro.partition import Graph, multilevel_kway, repartition

NPROC = 6


def main() -> None:
    mesh = box_mesh(4, 4, 4)
    dual = Graph.from_pairs(mesh.dual_pairs, mesh.ne)
    part = multilevel_kway(dual, NPROC, seed=0)

    # --- initialization phase -------------------------------------------------
    locals_ = decompose(mesh, part, NPROC)
    print(f"initialization: {mesh.ne} elements over {NPROC} ranks; "
          f"shared-object fractions "
          f"{[f'{lm.shared_fraction():.0%}' for lm in locals_]}")

    # --- execution phase: distributed marking propagation ----------------------
    marks = mark_sphere(mesh, (0.3, 0.3, 0.3), 0.35)
    result = parallel_mark(mesh, locals_, marks)
    serial = propagate_markings(mesh, marks)
    assert np.array_equal(result.edge_marked, serial.edge_marked)
    print(f"marking: {marks.sum()} edges targeted -> "
          f"{result.edge_marked.sum()} after {result.iterations} propagation "
          f"rounds ({result.messages} SPL messages, "
          f"{result.time_seconds * 1e3:.2f} virtual ms)")

    # --- load balance for the predicted weights, then migrate -------------------
    am = AdaptiveMesh(mesh)
    marking = am.mark(edge_mask=result.edge_marked)
    wcomp_pred, _ = am.predicted_weights(marking)
    new_part = repartition(dual.with_vwgt(wcomp_pred), NPROC, part, seed=0)
    mig = migrate(mesh, locals_, new_part)
    print(f"migration: moved {mig.elements_moved} elements in "
          f"{mig.messages} messages ({mig.seconds * 1e3:.2f} virtual ms)")

    # --- subdivide, then gather one global mesh --------------------------------
    am.refine(marking)
    fin = finalize(mig.locals)
    assert fin.mesh.ne == mesh.ne  # pre-subdivision grid reassembles exactly
    print(f"finalization: gathered {fin.mesh.ne} elements / {fin.mesh.nv} "
          f"vertices in {fin.gather_seconds * 1e3:.2f} virtual ms")
    print(f"refined global mesh: {am.mesh.ne} elements "
          f"(G = {am.mesh.ne / mesh.ne:.2f})")


if __name__ == "__main__":
    main()
