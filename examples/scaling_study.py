#!/usr/bin/env python3
"""Scaling study: remap-before vs remap-after across processor counts.

Reproduces the story of the paper's Figs. 4 and 5 on one strategy: how the
parallel mesh adaptor speeds up with processors, and how much data movement
the remap-before-subdivision ordering saves.

The whole sweep runs under an ambient tracer; alongside the table it
exports the trace as ``scaling_study.jsonl`` (schema ``repro.obs/v3``,
causal message DAG included) and renders the run-report dashboard to
``scaling_study.html`` — the same artifacts ``repro report
<trace.jsonl>`` produces.  Before printing the critical-path
composition it re-reads the exported file and checks the makespan
identity: every virtual-machine run's critical-path length must equal
its recorded makespan bit-for-bit.

Run:  python examples/scaling_study.py [resolution] [strategy]
      (strategy one of Real_1, Real_2, Real_3; default Real_1)
"""

import sys

from repro.experiments import case_for, run_step
from repro.experiments.sweep import SWEEP_PROCS
from repro.obs import (
    Tracer,
    analyze,
    export_jsonl,
    format_critical_path,
    read_jsonl,
    render_html,
    use_tracer,
    verify_makespans,
)


def main(resolution: int = 8, strategy: str = "Real_1") -> None:
    case = case_for(resolution)
    print(f"{strategy} on a {case.mesh.ne}-element rotor mesh "
          f"(virtual IBM SP2)\n")
    hdr = (f"{'P':>4s} | {'adapt(after)':>12s} {'adapt(before)':>13s} "
           f"{'speedup gain':>12s} | {'moved(after)':>12s} {'moved(before)':>13s}")
    print(hdr)
    print("-" * len(hdr))
    tracer = Tracer()
    with use_tracer(tracer):
        t1 = {m: run_step(resolution, strategy, m, 1).adaption_time
              for m in ("after", "before")}
        for p in SWEEP_PROCS:
            ra = run_step(resolution, strategy, "after", p)
            rb = run_step(resolution, strategy, "before", p)
            sa = t1["after"] / ra.adaption_time
            sb = t1["before"] / rb.adaption_time
            ma = ra.remap.elements_moved if ra.remap else 0
            mb = rb.remap.elements_moved if rb.remap else 0
            print(f"{p:4d} | {ra.adaption_time:12.4f} {rb.adaption_time:13.4f} "
                  f"{sb / sa:11.2f}x | {ma:12d} {mb:13d}")
    print("\n'speedup gain' is the factor by which remapping before the "
          "subdivision\nimproves the adaptor's parallel speedup "
          "(the paper reports up to 2.6x).")

    trace_path = "scaling_study.jsonl"
    html_path = "scaling_study.html"
    n = export_jsonl(tracer, trace_path)
    title = f"scaling study: {strategy} at resolution {resolution}"
    with open(html_path, "w") as fh:
        fh.write(render_html(tracer, title=title, source=trace_path))
    print(f"\nwrote {n} trace records to {trace_path}")
    print(f"wrote run report to {html_path} "
          f"(or render later: python -m repro report {trace_path})")

    # the causal record must explain the schedule exactly: for every VM
    # run in the exported file, critical-path length == makespan bit-for-bit
    reread = read_jsonl(trace_path)
    nruns = verify_makespans(reread)
    print(f"\nmakespan identity verified on {nruns} vm runs "
          "(critical-path length == makespan, to the last bit)")
    print("\ncritical-path composition of the whole sweep:")
    print(format_critical_path(analyze(reread), top=5))


if __name__ == "__main__":
    res = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    strat = sys.argv[2] if len(sys.argv) > 2 else "Real_1"
    main(res, strat)
