#!/usr/bin/env python3
"""Scaling study: remap-before vs remap-after across processor counts.

Reproduces the story of the paper's Figs. 4 and 5 on one strategy: how the
parallel mesh adaptor speeds up with processors, and how much data movement
the remap-before-subdivision ordering saves.

Run:  python examples/scaling_study.py [resolution] [strategy]
      (strategy one of Real_1, Real_2, Real_3; default Real_1)
"""

import sys

from repro.experiments import case_for, run_step
from repro.experiments.sweep import SWEEP_PROCS


def main(resolution: int = 8, strategy: str = "Real_1") -> None:
    case = case_for(resolution)
    print(f"{strategy} on a {case.mesh.ne}-element rotor mesh "
          f"(virtual IBM SP2)\n")
    hdr = (f"{'P':>4s} | {'adapt(after)':>12s} {'adapt(before)':>13s} "
           f"{'speedup gain':>12s} | {'moved(after)':>12s} {'moved(before)':>13s}")
    print(hdr)
    print("-" * len(hdr))
    t1 = {m: run_step(resolution, strategy, m, 1).adaption_time
          for m in ("after", "before")}
    for p in SWEEP_PROCS:
        ra = run_step(resolution, strategy, "after", p)
        rb = run_step(resolution, strategy, "before", p)
        sa = t1["after"] / ra.adaption_time
        sb = t1["before"] / rb.adaption_time
        ma = ra.remap.elements_moved if ra.remap else 0
        mb = rb.remap.elements_moved if rb.remap else 0
        print(f"{p:4d} | {ra.adaption_time:12.4f} {rb.adaption_time:13.4f} "
              f"{sb / sa:11.2f}x | {ma:12d} {mb:13d}")
    print("\n'speedup gain' is the factor by which remapping before the "
          "subdivision\nimproves the adaptor's parallel speedup "
          "(the paper reports up to 2.6x).")


if __name__ == "__main__":
    res = int(sys.argv[1]) if len(sys.argv) > 1 else 8
    strat = sys.argv[2] if len(sys.argv) > 2 else "Real_1"
    main(res, strat)
