#!/usr/bin/env python3
"""CI smoke check for the observability layer.

Runs ``python -m repro step --trace-out`` on a tiny mesh (resolution 4,
a few hundred elements — seconds of wall time), then validates the
emitted JSONL against the ``repro.obs/v2`` schema and sanity-checks the
span tree: the step must contain marking/subdivision spans and the root
span's virtual duration must equal the sum of its phase leaves.  The
trace must carry labelled metric samples, and ``repro report`` must
render it as both an ASCII dashboard (mentioning every cycle) and a
non-empty HTML file.

Exit status 0 on success, 1 with a diagnostic on any failure.

Usage:  python scripts/smoke_trace.py  (from the repo root)
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile

import _bootstrap  # noqa: F401  (puts src/ on sys.path)

REPO = _bootstrap.REPO
SRC = _bootstrap.SRC


def fail(msg: str) -> "int":
    print(f"smoke_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def main() -> int:
    from repro.obs import SCHEMA_VERSION, SchemaError, read_jsonl, validate_jsonl

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")

    with tempfile.TemporaryDirectory() as tmp:
        jsonl = os.path.join(tmp, "step.jsonl")
        chrome = os.path.join(tmp, "step.json")
        cmd = [
            sys.executable, "-m", "repro", "step", "4", "--nproc", "4",
            "--trace-out", jsonl, "--chrome-out", chrome,
        ]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")

        try:
            summary = validate_jsonl(jsonl)
        except SchemaError as exc:
            return fail(f"JSONL schema violation: {exc}")
        if summary["spans"] == 0:
            return fail("trace contains no spans")
        if summary["metrics"] == 0:
            return fail("trace contains no labelled metric samples")
        with open(jsonl) as fh:
            first = fh.readline()
        if f'"{SCHEMA_VERSION}"' not in first:
            return fail(f"meta line does not declare {SCHEMA_VERSION}: {first}")

        tracer = read_jsonl(jsonl)
        names = {s.name for s in tracer.spans}
        for required in ("adapt_step", "marking", "subdivision"):
            if required not in names:
                return fail(f"missing expected span {required!r}; got {names}")
        roots = [s for s in tracer.spans if s.parent is None]
        if len(roots) != 1:
            return fail(f"expected one root span, got {len(roots)}")
        leaf_names = ("marking", "repartition", "gather_scatter",
                      "reassign", "remap", "subdivision")
        leaf_sum = sum(s.v_duration for s in tracer.spans
                       if s.name in leaf_names)
        if abs(leaf_sum - roots[0].v_duration) > 1e-9:
            return fail(
                f"phase leaves sum to {leaf_sum} but the root span spans "
                f"{roots[0].v_duration} virtual seconds"
            )
        if not os.path.exists(chrome) or os.path.getsize(chrome) == 0:
            return fail("Chrome trace was not written")

        # the run report must render from the trace alone: ASCII mentioning
        # every recorded cycle, plus a self-contained HTML file with charts
        html = os.path.join(tmp, "report.html")
        cmd = [
            sys.executable, "-m", "repro", "report", jsonl,
            "--format", "both", "--out", html,
        ]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")
        cycles = tracer.metrics.cycles()
        if not cycles:
            return fail("trace records no adaptation cycles")
        for c in cycles:
            if not re.search(rf"^\s*{c}\b", proc.stdout, re.MULTILINE):
                return fail(f"ASCII report does not mention cycle {c}")
        if not os.path.exists(html) or os.path.getsize(html) == 0:
            return fail("HTML report was not written")
        with open(html) as fh:
            html_text = fh.read()
        if "<svg" not in html_text:
            return fail("HTML report contains no SVG charts")

    print(f"smoke_trace: OK ({summary['spans']} spans, "
          f"{summary['events']} events, {summary['metrics']} metrics, "
          f"{summary['counters']} counters, {len(cycles)} cycle(s))")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
