#!/usr/bin/env python3
"""CI smoke check for the observability layer.

Runs ``python -m repro step --trace-out`` on a tiny mesh (resolution 4,
a few hundred elements — seconds of wall time), then validates the
emitted JSONL against the ``repro.obs/v1`` schema and sanity-checks the
span tree: the step must contain marking/subdivision spans and the root
span's virtual duration must equal the sum of its phase leaves.

Exit status 0 on success, 1 with a diagnostic on any failure.

Usage:  python scripts/smoke_trace.py  (from the repo root)
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile

import _bootstrap  # noqa: F401  (puts src/ on sys.path)

REPO = _bootstrap.REPO
SRC = _bootstrap.SRC


def fail(msg: str) -> "int":
    print(f"smoke_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def main() -> int:
    from repro.obs import SchemaError, read_jsonl, validate_jsonl

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")

    with tempfile.TemporaryDirectory() as tmp:
        jsonl = os.path.join(tmp, "step.jsonl")
        chrome = os.path.join(tmp, "step.json")
        cmd = [
            sys.executable, "-m", "repro", "step", "4", "--nproc", "4",
            "--trace-out", jsonl, "--chrome-out", chrome,
        ]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")

        try:
            summary = validate_jsonl(jsonl)
        except SchemaError as exc:
            return fail(f"JSONL schema violation: {exc}")
        if summary["spans"] == 0:
            return fail("trace contains no spans")

        tracer = read_jsonl(jsonl)
        names = {s.name for s in tracer.spans}
        for required in ("adapt_step", "marking", "subdivision"):
            if required not in names:
                return fail(f"missing expected span {required!r}; got {names}")
        roots = [s for s in tracer.spans if s.parent is None]
        if len(roots) != 1:
            return fail(f"expected one root span, got {len(roots)}")
        leaf_names = ("marking", "repartition", "gather_scatter",
                      "reassign", "remap", "subdivision")
        leaf_sum = sum(s.v_duration for s in tracer.spans
                       if s.name in leaf_names)
        if abs(leaf_sum - roots[0].v_duration) > 1e-9:
            return fail(
                f"phase leaves sum to {leaf_sum} but the root span spans "
                f"{roots[0].v_duration} virtual seconds"
            )
        if not os.path.exists(chrome) or os.path.getsize(chrome) == 0:
            return fail("Chrome trace was not written")

    print(f"smoke_trace: OK ({summary['spans']} spans, "
          f"{summary['events']} events, {summary['counters']} counters)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
