#!/usr/bin/env python3
"""CI smoke check for the observability layer.

Runs ``python -m repro step --trace-out`` on a tiny mesh (resolution 4,
a few hundred elements — seconds of wall time), then validates the
emitted JSONL against the ``repro.obs/v5`` schema and sanity-checks the
span tree: the step must contain marking/subdivision spans and the root
span's virtual duration must equal the sum of its phase leaves.  The
trace must carry labelled metric samples, host resource samples, and a
causal record whose critical path reproduces every VM run's makespan
bit-for-bit, the Chrome export must carry flow events for the delivered
messages, and ``repro report`` / ``repro critical-path`` / ``repro
diff`` must all render from the file alone.

A second pass runs ``repro calibrate`` (virtual + the real mp/shm
backends on the exec-phase workload) with ``--trace-out`` and checks
that backend runs emit schema-valid traces carrying both the modelled
makespans and the measured wall clocks — including the v4 measured
layer: clock-alignment records, wall-clock causal runs whose critical
path matches the rank makespan within the recorded skew bound, the
measured report/critical-path renderings, and ``repro diff``'s graceful
degradation when one trace lacks measured runs — plus the v5 resource
layer: per-rank ``repro.resource.*`` samples from the forked rank
processes.

A third pass covers the live/longitudinal layer: ``repro step --live``
must render the dashboard off-TTY, and the run-history store the traced
runs indexed into must answer ``repro runs list``/``compare``/
``regress`` (with a clean exit on the unchanged re-run).

Exit status 0 on success, 1 with a diagnostic on any failure.

Usage:  python scripts/smoke_trace.py  (from the repo root)
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile

import _bootstrap  # noqa: F401  (puts src/ on sys.path)

REPO = _bootstrap.REPO
SRC = _bootstrap.SRC


def fail(msg: str) -> "int":
    print(f"smoke_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def main() -> int:
    from repro.obs import (
        SCHEMA_VERSION,
        SchemaError,
        read_jsonl,
        validate_jsonl,
        verify_makespans,
    )

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")

    with tempfile.TemporaryDirectory() as tmp:
        runs_dir = os.path.join(tmp, "runs")
        env["REPRO_RUNS_DIR"] = runs_dir  # keep the smoke hermetic
        jsonl = os.path.join(tmp, "step.jsonl")
        chrome = os.path.join(tmp, "step.json")
        cmd = [
            sys.executable, "-m", "repro", "step", "4", "--nproc", "4",
            "--trace-out", jsonl, "--chrome-out", chrome,
        ]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")

        try:
            summary = validate_jsonl(jsonl)
        except SchemaError as exc:
            return fail(f"JSONL schema violation: {exc}")
        if summary["spans"] == 0:
            return fail("trace contains no spans")
        if summary["metrics"] == 0:
            return fail("trace contains no labelled metric samples")
        with open(jsonl) as fh:
            first = fh.readline()
        if f'"{SCHEMA_VERSION}"' not in first:
            return fail(f"meta line does not declare {SCHEMA_VERSION}: {first}")

        # v5 resource layer: the traced CLI run samples its own process
        if summary.get("resources", 0) == 0:
            return fail("trace contains no resource samples")

        tracer = read_jsonl(jsonl)
        if not any(s.rank is None for s in tracer.resource_samples):
            return fail("trace carries no host (rank=None) resource samples")
        if not any(
            s.name == "repro.resource.peak_rss_bytes" and s.value > 0
            for s in tracer.metrics.samples()
        ):
            return fail("trace carries no positive repro.resource.* peaks")
        names = {s.name for s in tracer.spans}
        for required in ("adapt_step", "marking", "subdivision"):
            if required not in names:
                return fail(f"missing expected span {required!r}; got {names}")
        roots = [s for s in tracer.spans if s.parent is None]
        if len(roots) != 1:
            return fail(f"expected one root span, got {len(roots)}")
        leaf_names = ("marking", "repartition", "gather_scatter",
                      "reassign", "remap", "subdivision")
        leaf_sum = sum(s.v_duration for s in tracer.spans
                       if s.name in leaf_names)
        if abs(leaf_sum - roots[0].v_duration) > 1e-9:
            return fail(
                f"phase leaves sum to {leaf_sum} but the root span spans "
                f"{roots[0].v_duration} virtual seconds"
            )
        # v3 causal record: node/msg records present, makespan identity holds
        if summary.get("nodes", 0) == 0:
            return fail("trace contains no causal nodes")
        if summary.get("msgs", 0) == 0:
            return fail("trace contains no causal message records")
        try:
            nruns = verify_makespans(tracer)
        except AssertionError as exc:
            return fail(f"makespan identity violated: {exc}")
        if nruns == 0:
            return fail("trace records no vm runs to verify")

        if not os.path.exists(chrome) or os.path.getsize(chrome) == 0:
            return fail("Chrome trace was not written")
        with open(chrome) as fh:
            chrome_text = fh.read()
        if '"ph": "s"' not in chrome_text or '"ph": "f"' not in chrome_text:
            return fail("Chrome trace carries no send->recv flow events")

        # the run report must render from the trace alone: ASCII mentioning
        # every recorded cycle, plus a self-contained HTML file with charts
        html = os.path.join(tmp, "report.html")
        cmd = [
            sys.executable, "-m", "repro", "report", jsonl,
            "--format", "both", "--out", html,
        ]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")
        cycles = tracer.metrics.cycles()
        if not cycles:
            return fail("trace records no adaptation cycles")
        for c in cycles:
            if not re.search(rf"^\s*{c}\b", proc.stdout, re.MULTILINE):
                return fail(f"ASCII report does not mention cycle {c}")
        if not os.path.exists(html) or os.path.getsize(html) == 0:
            return fail("HTML report was not written")
        with open(html) as fh:
            html_text = fh.read()
        if "<svg" not in html_text:
            return fail("HTML report contains no SVG charts")
        if "Critical path" not in html_text:
            return fail("HTML report omits the critical-path section")

        # the critical-path breakdown must render from the file alone
        cmd = [sys.executable, "-m", "repro", "critical-path", jsonl]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")
        for needle in ("makespan:", "critical-path attribution by",
                       "stragglers per cycle"):
            if needle not in proc.stdout:
                return fail(f"critical-path output omits {needle!r}")

        # diffing a trace against itself must report a zero makespan delta
        cmd = [sys.executable, "-m", "repro", "diff", jsonl, jsonl]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")
        if "delta: +0.000000s" not in proc.stdout:
            return fail("self-diff did not report a zero makespan delta:\n"
                        f"{proc.stdout}")

        # backend runs must still emit valid obs traces: calibrate runs
        # the exec-phase workload on virtual + multiprocessing and the
        # exported JSONL must validate and carry both backends' clocks
        bjsonl = os.path.join(tmp, "backends.jsonl")
        cmd = [
            sys.executable, "-m", "repro", "calibrate", "3", "--nproc", "2",
            "--trace-out", bjsonl,
        ]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True,
            timeout=300,
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")
        try:
            bsummary = validate_jsonl(bjsonl)
        except SchemaError as exc:
            return fail(f"backend-trace schema violation: {exc}")
        if bsummary["metrics"] == 0:
            return fail("backend trace contains no metric samples")
        btracer = read_jsonl(bjsonl)
        clocks = {
            (s.name, s.labels_dict.get("backend"))
            for s in btracer.metrics.samples()
            if s.name.startswith("repro.backend.")
        }
        for needed in (
            ("repro.backend.makespan_seconds", "virtual"),
            ("repro.backend.makespan_seconds", "multiprocessing"),
            ("repro.backend.wall_seconds", "multiprocessing"),
        ):
            if needed not in clocks:
                return fail(f"backend trace lacks {needed}; got {clocks}")
        if "clock alignment per measured run" not in proc.stdout:
            return fail("calibrate did not print the clock-skew table")

        # v5 resource layer on a real backend: every forked mp/shm rank
        # must have shipped resource rows back into the trace
        if bsummary.get("resources", 0) == 0:
            return fail("backend trace contains no resource samples")
        rank_res = {
            (s.rank, s.labels_dict.get("backend"))
            for s in btracer.metrics.samples()
            if s.name == "repro.resource.peak_rss_bytes"
            and s.rank is not None
        }
        for needed in ((0, "multiprocessing"), (1, "multiprocessing"),
                       (0, "shm"), (1, "shm")):
            if needed not in rank_res:
                return fail(
                    f"backend trace lacks per-rank resource peaks for "
                    f"{needed}; got {sorted(rank_res)}"
                )

        # v4 measured layer: the real-backend runs must have recorded
        # clock-aligned wall causal runs under their phase spans
        from repro.obs.causal import runs_from_tracer

        if bsummary.get("clocks", 0) == 0:
            return fail("backend trace carries no clock-alignment records")
        wall_runs = runs_from_tracer(btracer, clock="wall")
        if not wall_runs:
            return fail("backend trace carries no measured (wall) runs")
        phases = {r.phase for r in wall_runs}
        if not phases & {"mark", "refine", "migrate", "gather"}:
            return fail(f"measured runs lost their phase names: {phases}")
        if any(r.skew <= 0.0 for r in wall_runs):
            return fail("a measured run carries no skew bound")
        try:
            verify_makespans(btracer)  # wall paths within skew of rank max
        except AssertionError as exc:
            return fail(f"measured makespan identity violated: {exc}")

        # the measured sections must render from the file alone
        cmd = [sys.executable, "-m", "repro", "report", bjsonl,
               "--format", "ascii"]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")
        for needle in ("Per-rank traffic (measured, wall clock)",
                       "Transport counters (shm)",
                       "Measured critical path (wall clock)"):
            if needle not in proc.stdout:
                return fail(f"measured report omits {needle!r}")

        cmd = [sys.executable, "-m", "repro", "critical-path", bjsonl,
               "--clock", "wall"]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")
        if "wall seconds" not in proc.stdout:
            return fail("measured critical path is not on the wall clock")

        # diff degrades gracefully when one trace lacks measured runs:
        # one-line notice on stderr, comparison still rendered
        cmd = [sys.executable, "-m", "repro", "diff", jsonl, bjsonl,
               "--clock", "wall"]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True,
            timeout=120,
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")
        if "carries no measured" not in proc.stderr:
            return fail("wall diff against a virtual-only trace printed "
                        "no degradation notice")
        if "makespan" not in proc.stdout:
            return fail("degraded diff rendered no comparison at all")

        # live pass: the dashboard must render off-TTY (plain snapshots on
        # stderr) while the remap's rank programs run on the mp backend,
        # streaming per-rank frames over the side channel
        cmd = [
            sys.executable, "-m", "repro", "step", "4", "--nproc", "4",
            "--backend", "multiprocessing", "--live", "--no-history",
        ]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True,
            timeout=300,
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")
        for needle in ("repro step r4", "[done]", "per-rank busy/idle:",
                       "resources (rss / cpu / gc):"):
            if needle not in proc.stderr:
                return fail(f"--live dashboard omits {needle!r}:\n"
                            f"{proc.stderr}")

        # run-history pass: the two traced runs above were indexed into
        # REPRO_RUNS_DIR; a second identical step gives regress a rolling
        # baseline, and the unchanged re-run must come back clean
        jsonl2 = os.path.join(tmp, "step2.jsonl")
        cmd = [
            sys.executable, "-m", "repro", "step", "4", "--nproc", "4",
            "--trace-out", jsonl2,
        ]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True,
            timeout=300,
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")
        from repro.obs.runs import RunStore

        store = RunStore(runs_dir)
        step_ids = [r.id for r in store.records()
                    if r.label == "step/r4"]
        if len(step_ids) != 2:
            return fail(f"expected 2 indexed step/r4 runs, got {step_ids}")
        cmd = [sys.executable, "-m", "repro", "runs", "compare",
               step_ids[0], step_ids[1]]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True,
            timeout=60,
        )
        if proc.returncode != 0:
            return fail(f"{' '.join(cmd)} exited {proc.returncode}:\n"
                        f"{proc.stdout}\n{proc.stderr}")
        for needle in ("makespan", "virtual_seconds", "peak_rss_bytes"):
            if needle not in proc.stdout:
                return fail(f"runs compare omits the {needle!r} metric:\n"
                            f"{proc.stdout}")
        # threshold 3x: host wall / cpu seconds of a ~15ms step are ±30%
        # noisy on loaded single-core CI hosts (the strict determinism
        # check is the virtual-second series in the bench gate)
        cmd = [sys.executable, "-m", "repro", "runs", "regress",
               step_ids[1], "--threshold", "3.0"]
        proc = subprocess.run(
            cmd, env=env, cwd=REPO, capture_output=True, text=True,
            timeout=60,
        )
        if proc.returncode != 0:
            return fail(f"unchanged re-run flagged as a regression "
                        f"(exit {proc.returncode}):\n{proc.stdout}")
        if "OK: no metric regressed" not in proc.stdout:
            return fail(f"runs regress verdict missing:\n{proc.stdout}")
        nstored = len(store.records())

    print(f"smoke_trace: OK ({summary['spans']} spans, "
          f"{summary['events']} events, {summary['metrics']} metrics, "
          f"{summary['nodes']} causal nodes, {summary['msgs']} msgs, "
          f"{summary['counters']} counters, "
          f"{summary['resources']} resource samples, {len(cycles)} "
          f"cycle(s); makespan identity on {nruns} vm run(s); "
          f"{len(wall_runs)} measured wall run(s) within skew; "
          f"live dashboard rendered; {nstored} run(s) in the history "
          "store, unchanged re-run regress-clean)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
