#!/bin/sh
# CI entry point: unit tests, trace smoke check, report + critical-path
# smoke, bench gate.
#
# The report smoke exports a one-step trace and renders the run-report
# dashboard and the critical-path breakdown from it; it fails if either
# command exits nonzero, the report omits the cycle's balance-quality
# row, or the breakdown omits the makespan attribution.  The bench gate
# runs the quick profile (resolution 4, subset) and fails on schema
# violations, >15% wall-time regression vs the committed
# BENCH_results.json, or any drift in the virtual-second series (which
# stays bit-identical: causal recording never alters modelled clocks).
# The multiprocessing smoke runs the calibrate workload on real forked
# rank processes and fails unless its payloads match the virtual run's.
# The live smoke checks the streaming dashboard and the run-history
# store's compare/regress on the traces exported along the way (all
# indexed into a throwaway REPRO_RUNS_DIR, keeping the checkout clean).
set -e
cd "$(dirname "$0")/.."

python -m pytest -x -q
python scripts/smoke_trace.py

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
# keep the run-history store hermetic: every traced run below indexes
# into the throwaway store instead of the checkout's .repro_runs
export REPRO_RUNS_DIR="$tmp/runs"
PYTHONPATH=src python -m repro step 4 --nproc 4 --trace-out "$tmp/step.jsonl" > /dev/null
PYTHONPATH=src python -m repro report "$tmp/step.jsonl" --format ascii > "$tmp/report.txt"
grep -q "Balance quality per cycle" "$tmp/report.txt"
grep -q "Critical path" "$tmp/report.txt"
grep -q "Resource usage (per process)" "$tmp/report.txt"
grep -Eq "^ *0 " "$tmp/report.txt"
PYTHONPATH=src python -m repro critical-path "$tmp/step.jsonl" > "$tmp/cpath.txt"
grep -q "critical-path attribution by" "$tmp/cpath.txt"
PYTHONPATH=src python -m repro diff "$tmp/step.jsonl" "$tmp/step.jsonl" > "$tmp/diff.txt"
grep -q "delta: +0.000000s" "$tmp/diff.txt"
echo "report smoke: OK"

# real-backend smoke: the fig6 exec-phase workload must produce payloads
# identical to the virtual backend's on every measured backend (queue
# pickling and zero-copy slabs), under a hard timeout so a hung rank
# process fails CI instead of wedging it.  --fit exercises the machine-
# constant regression on the measured walls; --trace-out exercises the
# measured (v4) tracing layer end to end.
timeout 300 env PYTHONPATH=src python -m repro calibrate 4 --nproc 4 --fit \
    --trace-out "$tmp/cal.jsonl" > "$tmp/calibrate.txt"
grep -q "backend 'multiprocessing' vs 'virtual'" "$tmp/calibrate.txt"
grep -q "backend 'shm' vs 'virtual'" "$tmp/calibrate.txt"
grep -q "pickle vs zero-copy (measured host wall" "$tmp/calibrate.txt"
grep -q "payloads: identical across backends" "$tmp/calibrate.txt"
grep -q "fitted machine constants" "$tmp/calibrate.txt"
grep -q "clock alignment per measured run" "$tmp/calibrate.txt"
echo "real-backend smoke: OK"

# measured-trace smoke: the calibrate trace carries wall-clock causal
# runs; the report and critical-path commands must render them, and the
# wall diff against the (virtual-only) step trace must degrade with a
# notice instead of failing.
timeout 120 env PYTHONPATH=src python -m repro report "$tmp/cal.jsonl" \
    --format ascii > "$tmp/cal_report.txt"
grep -q "Per-rank traffic (measured, wall clock)" "$tmp/cal_report.txt"
grep -q "Transport counters (shm)" "$tmp/cal_report.txt"
grep -q "Measured critical path (wall clock)" "$tmp/cal_report.txt"
grep -q "rank 3" "$tmp/cal_report.txt"  # per-rank resource rows (v5)
timeout 120 env PYTHONPATH=src python -m repro critical-path \
    "$tmp/cal.jsonl" --clock wall > "$tmp/cal_cpath.txt"
grep -q "wall seconds" "$tmp/cal_cpath.txt"
timeout 120 env PYTHONPATH=src python -m repro diff "$tmp/step.jsonl" \
    "$tmp/cal.jsonl" --clock wall > "$tmp/cal_diff.txt" 2> "$tmp/cal_diff_err.txt"
grep -q "carries no measured" "$tmp/cal_diff_err.txt"
grep -q "makespan" "$tmp/cal_diff.txt"
echo "measured-trace smoke: OK"

# live + run-history smoke: the fig6-style step on real forked ranks
# must render the streaming dashboard off-TTY, and the two step traces
# indexed above must answer compare/regress from the store alone
timeout 300 env PYTHONPATH=src python -m repro step 4 --nproc 4 \
    --backend multiprocessing --live --no-history \
    > /dev/null 2> "$tmp/live.txt"
grep -q "per-rank busy/idle:" "$tmp/live.txt"
grep -q "resources (rss / cpu / gc):" "$tmp/live.txt"
grep -q "\[done\]" "$tmp/live.txt"
PYTHONPATH=src python -m repro step 4 --nproc 4 \
    --trace-out "$tmp/step2.jsonl" > /dev/null
ids="$(PYTHONPATH=src python -m repro runs list | awk '/ step\/r4 /{print $1}')"
set -- $ids
test "$#" -ge 2
PYTHONPATH=src python -m repro runs compare "$1" "$2" > "$tmp/runs_cmp.txt"
grep -q "makespan" "$tmp/runs_cmp.txt"
grep -q "peak_rss_bytes" "$tmp/runs_cmp.txt"
# threshold 3x: wall/cpu of a ~15ms step are ±30% noisy on CI hosts
PYTHONPATH=src python -m repro runs regress --threshold 3.0 > "$tmp/runs_reg.txt"
grep -q "OK: no metric regressed" "$tmp/runs_reg.txt"
echo "live + run-history smoke: OK"

# MPI lane: the same rank programs under mpiexec, when an MPI stack is
# installed; skipped cleanly (not failed) on hosts without one.
if command -v mpiexec > /dev/null 2>&1 \
    && PYTHONPATH=src python -c "import mpi4py" > /dev/null 2>&1; then
    timeout 300 mpiexec -n 4 python scripts/mpi_smoke.py > "$tmp/mpi.txt"
    grep -q "mpi smoke: OK" "$tmp/mpi.txt"
    echo "mpi smoke: OK"
else
    echo "mpi smoke: SKIP (mpiexec or mpi4py unavailable)"
fi

# weak-scaling smoke: the vectorized scheduler must still beat the eager
# reference path on the fig6-style cycle (small rank count keeps this a
# few seconds; the tracked 1k/4k/16k numbers live in the bench gate).
timeout 300 env PYTHONPATH=src python -m repro scale \
    --ranks 256 --compare --repeats 1 > "$tmp/scale.txt"
grep -q "weak scaling of the VM scheduler" "$tmp/scale.txt"
grep -Eq "^ +256 .*x$" "$tmp/scale.txt"
echo "weak-scaling smoke: OK"

# wall regressions gate at 1.4x: single-core CI hosts show ±30% wall
# noise run to run, and the strict check is the virtual-second series,
# which must match the baseline bit-for-bit regardless of load.
python scripts/bench_suite.py --quick --baseline BENCH_results.json \
    --no-write --max-regress 1.4
echo "ci: OK"
