#!/bin/sh
# CI entry point: unit tests, trace smoke check, report smoke, bench gate.
#
# The report smoke exports a one-step trace and renders the run-report
# dashboard from it; it fails if the report exits nonzero or omits the
# cycle's balance-quality row.  The bench gate runs the quick profile
# (resolution 4, subset) and fails on schema violations, >15% wall-time
# regression vs the committed BENCH_results.json, or any drift in the
# virtual-second series.
set -e
cd "$(dirname "$0")/.."

python -m pytest -x -q
python scripts/smoke_trace.py

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
PYTHONPATH=src python -m repro step 4 --nproc 4 --trace-out "$tmp/step.jsonl" > /dev/null
PYTHONPATH=src python -m repro report "$tmp/step.jsonl" --format ascii > "$tmp/report.txt"
grep -q "Balance quality per cycle" "$tmp/report.txt"
grep -Eq "^ *0 " "$tmp/report.txt"
echo "report smoke: OK"

python scripts/bench_suite.py --quick --baseline BENCH_results.json --no-write
echo "ci: OK"
