#!/bin/sh
# CI entry point: unit tests, trace smoke check, quick benchmark gate.
#
# The bench gate runs the quick profile (resolution 4, subset) and fails
# on schema violations, >15% wall-time regression vs the committed
# BENCH_results.json, or any drift in the virtual-second series.
set -e
cd "$(dirname "$0")/.."

python -m pytest -x -q
python scripts/smoke_trace.py
python scripts/bench_suite.py --quick --baseline BENCH_results.json --no-write
echo "ci: OK"
