#!/usr/bin/env python3
"""MPI-lane smoke check: run the exec-phase ring under real MPI ranks.

SPMD entry point — launch with::

    mpiexec -n 4 python scripts/mpi_smoke.py

Every process drives its local rank of the same generator programs the
virtual machine runs: a wildcard-receive ring with a nonblocking probe
loop, then a payload echo with ndarray, mixed-tuple, and zero-length
payloads.  Rank 0 compares the allgathered returns against the virtual
backend's (payload identity is the contract every backend signs) and
prints ``mpi smoke: OK``; any mismatch or hang fails the lane.

``scripts/ci.sh`` runs this only when both ``mpiexec`` and ``mpi4py``
are present, and skips the lane cleanly otherwise.
"""

from __future__ import annotations

import sys

import _bootstrap  # noqa: F401  (sys.path setup)
import numpy as np

from repro.parallel import ANY, create_communicator
from repro.parallel.runtime import per_rank


def ring_program(comm, bonus):
    import operator

    right = (comm.rank + 1) % comm.size
    yield from comm.send(f"r{comm.rank}+{bonus}", dest=right, tag=5)
    got = yield from comm.recv(source=ANY, tag=5)
    total = yield from comm.allreduce(comm.rank + 1, op=operator.add)
    return (got, total)


def echo_program(comm):
    payloads = [
        np.arange(2048, dtype=np.float64),
        (np.arange(64, dtype=np.int32), "meta", 7),
        np.empty((0,), dtype=np.float64),
    ]
    partner = comm.rank ^ 1
    if partner >= comm.size:
        return 1  # odd rank count: the unpaired rank has nothing to check
    for i, p in enumerate(payloads):
        yield from comm.send(p, dest=partner, tag=10 + i)
    got = []
    for i in range(len(payloads)):
        p = yield from comm.recv(source=partner, tag=10 + i)
        got.append(p)
    ok = (
        np.array_equal(got[0], payloads[0])
        and np.array_equal(got[1][0], payloads[1][0])
        and got[1][1:] == payloads[1][1:]
        and got[2].shape == (0,)
    )
    return int(ok)


def main() -> int:
    try:
        from mpi4py import MPI
    except ImportError:
        print("mpi smoke: SKIP (mpi4py not importable)")
        return 0
    nranks = MPI.COMM_WORLD.size
    comm = create_communicator("mpi4py", nranks)
    args = per_rank([10 * r for r in range(nranks)])
    mres = comm.run(ring_program, args)
    eres = comm.run(echo_program)

    if MPI.COMM_WORLD.rank != 0:
        return 0
    vres = create_communicator("virtual", nranks).run(ring_program, args)
    if mres.returns != vres.returns:
        print(
            f"mpi smoke: ring returns differ from virtual\n"
            f"  mpi4py:  {mres.returns}\n  virtual: {vres.returns}"
        )
        return 1
    if not all(eres.returns):
        print(f"mpi smoke: payload echo mismatch on ranks "
              f"{[r for r, ok in enumerate(eres.returns) if not ok]}")
        return 1
    print(f"mpi smoke: OK ({nranks} ranks, "
          f"{mres.total_messages + eres.total_messages} messages)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
