"""Shared path setup for repo scripts: make ``src/`` importable.

Import this before any ``repro`` import in a script; pytest runs get the
same path via ``pythonpath = ["src"]`` in ``pyproject.toml``.
"""

import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

if SRC not in sys.path:
    sys.path.insert(0, SRC)
