#!/usr/bin/env python3
"""Run the tracked benchmark suite and write/check ``BENCH_results.json``.

Runs the registered paper-figure/table workloads (see
``repro.bench.registry``) with pinned seeds, measuring host wall seconds
per bench and the modelled virtual seconds per phase from tracer spans,
then writes a schema-validated ``repro.bench/v1`` document.

Typical uses::

    python scripts/bench_suite.py                      # full suite, res 6
    python scripts/bench_suite.py --quick              # CI subset, res 4
    python scripts/bench_suite.py --quick \
        --baseline BENCH_results.json                  # gate: fail on >15%
    python scripts/bench_suite.py --with-reference     # record speedups

``--baseline`` compares the matching profile: wall time may not regress
beyond ``--max-regress`` (default 1.15), and the virtual-second series
must match the baseline exactly.  ``REPRO_BENCH_RESOLUTION`` overrides
the default resolution (full: 6, quick: 4), as does ``--resolution``.

Each run's headline numbers are also appended to the cross-run history
store (``.repro_runs/``, one record per bench; see ``repro runs``), so
the perf trajectory accrues run over run — ``--no-history`` opts out and
``--history-dir`` picks a different store root.

Exit status: 0 on success, 1 on regression/divergence, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import _bootstrap  # noqa: F401  (puts src/ on sys.path)

from repro.bench import (
    BENCHES,
    QUICK_BENCHES,
    BenchComparisonError,
    SchemaError,
    compare_runs,
    merge_results,
    run_suite,
    validate_results,
)

DEFAULT_OUT = os.path.join(_bootstrap.REPO, "BENCH_results.json")


def _load(path: str) -> dict:
    with open(path) as fh:
        doc = json.load(fh)
    validate_results(doc)
    return doc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the tracked benchmark suite."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI subset {QUICK_BENCHES} at resolution 4",
    )
    parser.add_argument(
        "--resolution",
        type=int,
        default=None,
        help="mesh resolution (default: REPRO_BENCH_RESOLUTION or 6; quick: 4)",
    )
    parser.add_argument(
        "--benches",
        default=None,
        help="comma-separated bench names (default: profile's full set)",
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help="results file to write; an existing file's other profile is kept",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="do not write --out"
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline BENCH_results.json to compare the run against",
    )
    parser.add_argument(
        "--max-regress",
        type=float,
        default=1.15,
        help="allowed wall-time factor vs baseline (default 1.15)",
    )
    parser.add_argument(
        "--with-reference",
        action="store_true",
        help="also time the reference kernels and record per-bench speedups",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="best-of-N wall timing per bench (default: 3 for --quick, else 1)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered benches and exit"
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not index this run into the run-history store",
    )
    parser.add_argument(
        "--history-dir",
        default=None,
        help="run-history store root (default: $REPRO_RUNS_DIR or "
             "./.repro_runs)",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, bench in BENCHES.items():
            print(f"{name:18s} {bench.description}")
        return 0

    profile = "quick" if args.quick else "full"
    resolution = args.resolution
    if resolution is None:
        env = os.environ.get("REPRO_BENCH_RESOLUTION")
        if args.quick:
            resolution = 4
        elif env:
            resolution = int(env)
        else:
            resolution = 6
    if args.benches:
        names = tuple(n.strip() for n in args.benches.split(",") if n.strip())
    else:
        names = QUICK_BENCHES if args.quick else tuple(BENCHES)

    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 1)

    print(f"profile={profile} resolution={resolution} benches={','.join(names)}")
    try:
        doc = run_suite(
            names,
            resolution,
            profile=profile,
            with_reference=args.with_reference,
            repeats=repeats,
            progress=lambda msg: print(f"  {msg}", flush=True),
        )
    except (KeyError, BenchComparisonError) as exc:
        print(f"bench_suite: FAIL: {exc}", file=sys.stderr)
        return 1

    if args.baseline:
        try:
            baseline = _load(args.baseline)
        except (OSError, json.JSONDecodeError, SchemaError) as exc:
            print(f"bench_suite: bad baseline: {exc}", file=sys.stderr)
            return 2
        failures = compare_runs(doc, baseline, profile, args.max_regress)
        for f in failures:
            print(f"bench_suite: FAIL: {f}", file=sys.stderr)
        if failures:
            return 1
        print(f"baseline check OK (max-regress {args.max_regress:.2f}x)")

    if not args.no_write:
        existing = None
        if os.path.exists(args.out):
            try:
                existing = _load(args.out)
            except (json.JSONDecodeError, SchemaError) as exc:
                print(
                    f"bench_suite: replacing unreadable {args.out}: {exc}",
                    file=sys.stderr,
                )
        merged = merge_results(existing, doc)
        with open(args.out, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")

    if not args.no_history:
        from repro.obs.runs import RunStore, index_bench_results

        store = RunStore(args.history_dir)
        recs = index_bench_results(store, doc, profile=profile)
        print(f"indexed {len(recs)} bench record(s) into {store.root} "
              "(inspect with `repro runs list`)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
